package server

// The cluster serving layer promotes cluster.Coordinator from an offline
// experiment to a served subsystem: each live cluster is owned by its own
// supervised manager goroutine (the same drain / panic-recovery discipline
// as the per-node session manager), stepped one coordinator epoch per tick
// with the node sessions advanced concurrently on a bounded worker pool,
// and observable over REST, an NDJSON epoch stream, and pupil_cluster_*
// exporter families.

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pupil/internal/cluster"
	"pupil/internal/core"
	"pupil/internal/faults"
	"pupil/internal/machine"
	"pupil/internal/pipeline"
	"pupil/internal/telemetry"
)

// Defaults for cluster tick pacing.
const (
	// DefaultClusterEpochSim is the simulated time one tick (one
	// coordinator epoch) advances.
	DefaultClusterEpochSim = time.Second
	// DefaultClusterTickReal is the wall-clock interval between epochs;
	// together with DefaultClusterEpochSim a cluster runs at 4x real time.
	DefaultClusterTickReal = 250 * time.Millisecond
)

// ClusterNodeConfig names one machine of a cluster to create. Platform,
// technique, and workload resolution follow NodeConfig exactly.
type ClusterNodeConfig struct {
	// Name is an optional human label; defaults to node<index>.
	Name string `json:"name,omitempty"`
	// Platform is "server" (default) or "mobile".
	Platform string `json:"platform,omitempty"`
	// Technique selects the node-level capper (default PUPiL).
	Technique string `json:"technique,omitempty"`
	// Mix launches a named multi-application mix; mutually exclusive with
	// Workloads.
	Mix string `json:"mix,omitempty"`
	// Workloads launches the listed benchmarks together.
	Workloads []WorkloadConfig `json:"workloads,omitempty"`
}

// ClusterTopologyConfig groups a cluster's nodes into hierarchical budget
// domains (racks, optionally rows under a datacenter root); see
// cluster.Topology. Omitting it keeps the flat coordinator.
type ClusterTopologyConfig struct {
	// NodesPerRack groups consecutive nodes into racks of this size.
	NodesPerRack int `json:"nodes_per_rack"`
	// RacksPerRow optionally groups consecutive racks into rows, adding a
	// third budget level.
	RacksPerRow int `json:"racks_per_row,omitempty"`
	// RebalanceEvery is the parent-level rebalance cadence in epochs
	// (default 1: every epoch).
	RebalanceEvery int `json:"rebalance_every,omitempty"`
}

// ClusterHealthConfig enables and tunes fleet health tracking; see
// cluster.HealthConfig for field semantics. Its presence in a
// ClusterConfig — even empty, taking every default — turns quarantine on;
// omitting it keeps the naive coordinator and byte-identical output.
type ClusterHealthConfig struct {
	SuspectEpochs    int     `json:"suspect_epochs,omitempty"`
	RecoverEpochs    int     `json:"recover_epochs,omitempty"`
	ProbeAfterEpochs int     `json:"probe_after_epochs,omitempty"`
	MaxBackoffEpochs int     `json:"max_backoff_epochs,omitempty"`
	OverCapFrac      float64 `json:"over_cap_frac,omitempty"`
	StaleEpochs      int     `json:"stale_epochs,omitempty"`
}

func (h *ClusterHealthConfig) engine() *cluster.HealthConfig {
	if h == nil {
		return nil
	}
	return &cluster.HealthConfig{
		SuspectEpochs:    h.SuspectEpochs,
		RecoverEpochs:    h.RecoverEpochs,
		ProbeAfterEpochs: h.ProbeAfterEpochs,
		MaxBackoffEpochs: h.MaxBackoffEpochs,
		OverCapFrac:      h.OverCapFrac,
		StaleEpochs:      h.StaleEpochs,
	}
}

// ClusterFaultConfig is the API form of one cluster fault: the scenario
// plus its target — one node by index, or every node of a named budget
// domain (the rack-correlated failure). Exactly one of Node and Domain
// must be set. Cluster-scoped kinds ("crash"/"hang"/"flap" on target
// "node", "corrupt" on "demand-report") hit the coordinator's epoch
// loop; node-scoped kinds forward into the member node's own injector.
type ClusterFaultConfig struct {
	FaultConfig
	Node   *int   `json:"node,omitempty"`
	Domain string `json:"domain,omitempty"`
}

// ClusterConfig describes a cluster to create.
type ClusterConfig struct {
	// Name is an optional human label; the manager assigns the ID.
	Name string `json:"name,omitempty"`
	// Nodes lists the cluster's machines (at least one).
	Nodes []ClusterNodeConfig `json:"nodes"`
	// BudgetWatts is the global power budget the coordinator partitions.
	BudgetWatts float64 `json:"budget_watts"`
	// Policy selects the rebalancing policy: "even" (default),
	// "demand-shift", or "proportional".
	Policy string `json:"policy,omitempty"`
	// FloorWatts is the minimum cap any node may be assigned (default 25).
	FloorWatts float64 `json:"floor_watts,omitempty"`
	// EpochSimMS is the simulated coordinator epoch per tick in
	// milliseconds (default 1000).
	EpochSimMS int `json:"epoch_sim_ms,omitempty"`
	// TickRealMS is the wall-clock interval between epochs in milliseconds
	// (default 250). FreeRun overrides it.
	TickRealMS int `json:"tick_real_ms,omitempty"`
	// FreeRun steps epochs as fast as the host allows.
	FreeRun bool `json:"free_run,omitempty"`
	// MaxSimS stops the cluster after this much simulated time; 0 runs
	// until deleted.
	MaxSimS float64 `json:"max_sim_s,omitempty"`
	// Seed makes the cluster's run reproducible.
	Seed uint64 `json:"seed,omitempty"`
	// Parallel bounds the worker pool that advances node sessions inside
	// one epoch (<= 0 means all cores). Never affects results.
	Parallel int `json:"parallel,omitempty"`
	// Topology optionally arranges the nodes into hierarchical budget
	// domains (rack -> row -> datacenter).
	Topology *ClusterTopologyConfig `json:"topology,omitempty"`
	// Health enables fleet health tracking and quarantine; omitted keeps
	// the naive coordinator.
	Health *ClusterHealthConfig `json:"health,omitempty"`
	// Faults schedules cluster fault scenarios at creation; more can be
	// injected later through POST /v1/clusters/{id}/faults.
	Faults []ClusterFaultConfig `json:"faults,omitempty"`
}

// ClusterNodeStatus is the API view of one node of a cluster.
type ClusterNodeStatus struct {
	Index     int      `json:"index"`
	Name      string   `json:"name"`
	Technique string   `json:"technique"`
	Workloads []string `json:"workloads"`
	// CapWatts is the node's currently assigned share of the budget.
	CapWatts float64 `json:"cap_watts"`
	// MeanPowerWatts and MeanRateHBs average the trailing epoch.
	MeanPowerWatts float64 `json:"mean_power_watts"`
	MeanRateHBs    float64 `json:"mean_rate_hbs"`
	// Health is the node's health state ("healthy", "suspect",
	// "quarantined", "recovering"); omitted when the cluster was created
	// without health tracking.
	Health string `json:"health,omitempty"`
}

// ClusterDomainStatus is the API view of one budget domain of a
// hierarchical cluster.
type ClusterDomainStatus struct {
	Name   string `json:"name"`
	Level  string `json:"level"`
	Parent string `json:"parent,omitempty"`
	// Nodes counts the cluster nodes the domain covers.
	Nodes int `json:"nodes"`
	// BudgetWatts is the budget currently delegated to the domain; child
	// budgets always sum to their parent's.
	BudgetWatts float64 `json:"budget_watts"`
	// MeanPowerWatts sums the member nodes' trailing-epoch mean power.
	MeanPowerWatts float64 `json:"mean_power_watts"`
	// FairShareMin is the minimum, over member nodes, of cap / fair even
	// share — 1.0 means a perfectly even split inside the domain.
	FairShareMin float64 `json:"fair_share_min"`
}

// ClusterStatus is the API view of a cluster.
type ClusterStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  State  `json:"state"`
	Policy string `json:"policy"`
	// Epoch counts coordinator epochs stepped so far.
	Epoch uint64  `json:"epoch"`
	SimS  float64 `json:"sim_s"`
	// BudgetWatts is the global budget; node cap_watts always sum to it
	// after a rebalance.
	BudgetWatts float64 `json:"budget_watts"`
	// TotalPowerWatts and TotalPerfHBs sum the nodes' trailing-epoch means.
	TotalPowerWatts float64             `json:"total_power_watts"`
	TotalPerfHBs    float64             `json:"total_perf_hbs"`
	Nodes           []ClusterNodeStatus `json:"nodes"`
	// Domains carries the budget-domain tree in breadth-first order (root
	// first); omitted for flat clusters.
	Domains     []ClusterDomainStatus `json:"domains,omitempty"`
	Subscribers int                   `json:"subscribers"`
	// StreamDropped counts samples lost across all of this cluster's
	// stream subscribers (including closed ones) to full ring buffers.
	StreamDropped uint64 `json:"stream_dropped,omitempty"`
	// Quarantined counts benched nodes (quarantined or probing) and
	// ReclaimedWatts sums the budget reclaimed from them; both omitted
	// when zero, so health-off output is unchanged.
	Quarantined    int     `json:"quarantined,omitempty"`
	ReclaimedWatts float64 `json:"reclaimed_watts,omitempty"`
	// FailReason carries the panic message of a failed cluster.
	FailReason string `json:"fail_reason,omitempty"`
}

// ClusterSample is one per-epoch record pushed to cluster stream
// subscribers.
type ClusterSample struct {
	Cluster string  `json:"cluster"`
	Epoch   uint64  `json:"epoch"`
	SimS    float64 `json:"sim_s"`
	// BudgetWatts is the budget in force when the epoch completed.
	BudgetWatts float64 `json:"budget_watts"`
	// CapsWatts is the per-node assignment after the epoch's rebalance.
	CapsWatts []float64 `json:"caps_watts"`
	// NodePowerWatts is each node's mean power over the epoch.
	NodePowerWatts []float64 `json:"node_power_watts"`
	// TotalPowerWatts and TotalPerfHBs sum the nodes' epoch means.
	TotalPowerWatts float64 `json:"total_power_watts"`
	TotalPerfHBs    float64 `json:"total_perf_hbs"`
	// Domains carries per-domain budgets and fairness for hierarchical
	// clusters; omitted for flat clusters.
	Domains []ClusterDomainStatus `json:"domains,omitempty"`
	// NodeHealth is each node's health state; omitted (with Quarantined
	// and ReclaimedWatts) for clusters created without health tracking,
	// keeping their stream output byte-identical.
	NodeHealth     []string `json:"node_health,omitempty"`
	Quarantined    int      `json:"quarantined,omitempty"`
	ReclaimedWatts float64  `json:"reclaimed_watts,omitempty"`
	// Dropped counts samples this subscriber lost to a full buffer; it is
	// filled in by the streaming layer, not the producer.
	Dropped uint64 `json:"dropped,omitempty"`
}

// domainStatusesInto appends the converted coordinator domain snapshots to
// dst, so the epoch loop can reuse one buffer instead of allocating per
// epoch.
func domainStatusesInto(dst []ClusterDomainStatus, ds []cluster.DomainSnapshot) []ClusterDomainStatus {
	for _, d := range ds {
		dst = append(dst, ClusterDomainStatus{
			Name:           d.Name,
			Level:          d.Level,
			Parent:         d.Parent,
			Nodes:          d.Nodes,
			BudgetWatts:    d.BudgetWatts,
			MeanPowerWatts: d.MeanPowerWatts,
			FairShareMin:   d.FairShareMin,
		})
	}
	return dst
}

// ClusterFaultEvent is the API view of one cluster fault transition —
// onset or clearance — on one node.
type ClusterFaultEvent struct {
	SimS   float64 `json:"sim_s"`
	Node   int     `json:"node"`
	Fault  string  `json:"fault"`
	Active bool    `json:"active"`
}

// ClusterHealthEvent is the API view of one node health transition.
type ClusterHealthEvent struct {
	SimS   float64 `json:"sim_s"`
	Node   int     `json:"node"`
	From   string  `json:"from"`
	To     string  `json:"to"`
	Reason string  `json:"reason"`
}

// ClusterNodeFaults lists one node's scheduled fault scenarios,
// cluster-scoped first, onsets in absolute simulated time.
type ClusterNodeFaults struct {
	Node      int           `json:"node"`
	Scenarios []FaultConfig `json:"scenarios"`
	Active    int           `json:"active"`
}

// ClusterFaultInfo is the API view of a cluster's fault-injection and
// fleet-health state. The health fields are present only for clusters
// created with health tracking.
type ClusterFaultInfo struct {
	// Nodes lists every node with at least one scheduled scenario.
	Nodes []ClusterNodeFaults `json:"nodes"`
	// Active counts scenarios currently in effect across the cluster.
	Active int `json:"active"`
	// Events logs fault onsets and clearances observed so far, in time
	// order (cluster-scoped transitions at epoch boundaries, node-scoped
	// ones on the member node's own clock).
	Events []ClusterFaultEvent `json:"events"`
	// Health is each node's current health state, indexed like Nodes in
	// the cluster status.
	Health []string `json:"health,omitempty"`
	// HealthEvents logs node health transitions.
	HealthEvents []ClusterHealthEvent `json:"health_events,omitempty"`
	// Quarantined counts benched nodes; ReclaimedWatts sums the budget
	// reclaimed from them.
	Quarantined    int     `json:"quarantined,omitempty"`
	ReclaimedWatts float64 `json:"reclaimed_watts,omitempty"`
}

// Cluster is one live coordinator owned by the manager: its epoch loop, the
// mutex serializing coordinator access against budget/cap mutations and
// status reads, and the per-epoch telemetry fan-out.
type Cluster struct {
	id          string
	cfg         ClusterConfig
	nodeTech    []string   // resolved technique per node
	nodeNames   []string   // resolved display name per node
	nodeApps    [][]string // resolved workload names per node
	nodeDomains []string   // leaf (rack) domain per node; nil when flat
	epochSim    time.Duration
	tickReal    time.Duration
	maxSim      time.Duration

	// healthOn records whether the cluster was created with fleet health
	// tracking, so failed clusters can still answer without the coordinator.
	healthOn bool

	mu         sync.Mutex // guards coord, lastSnap, state, failReason, epoch bufs
	coord      *cluster.Coordinator
	lastSnap   cluster.Snapshot // reused SnapshotInto target for the epoch loop
	state      State
	failReason string

	// pubMu guards the published status view Status serves without
	// waiting on mu — at fleet scale an epoch step holds mu for hundreds
	// of milliseconds, and before this split every cluster status read
	// (and every /metrics scrape) queued behind it. pub's Nodes and
	// Domains slices are pub-owned backing arrays reused across refreshes
	// (NodeSnapshot and DomainSnapshot are flat value structs), so the
	// steady-state epoch path stays allocation-free; Status copies them
	// out per call.
	pubMu sync.Mutex
	pub   ClusterStatus

	// Per-epoch scratch reused by advance so the steady-state epoch path
	// stays allocation-free; the built sample aliases these buffers and is
	// deep-copied only when stream subscribers will retain it.
	capsBuf   []float64
	powerBuf  []float64
	domBuf    []ClusterDomainStatus
	healthBuf []string

	epoch  atomic.Uint64
	fan    *telemetry.Fanout[ClusterSample]
	cancel context.CancelFunc
	done   chan struct{}

	// router is the manager's telemetry pipeline (nil on detached
	// clusters); pubBuf is the reused per-epoch publish batch.
	router *pipeline.Router
	pubBuf []pipeline.Sample
}

// ID returns the manager-assigned cluster ID.
func (c *Cluster) ID() string { return c.id }

// Epoch returns how many coordinator epochs the cluster has stepped.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// Done is closed when the cluster's epoch loop has exited.
func (c *Cluster) Done() <-chan struct{} { return c.done }

// Subscribe registers an epoch-stream subscriber with the given ring-buffer
// capacity. The subscriber's channel closes when the cluster stops. It takes
// the cluster lock so registration is ordered against the epoch loop's
// publish: a sample built while no subscriber existed aliases reused
// buffers, and must never reach a ring that outlives the epoch.
func (c *Cluster) Subscribe(buffer int) *telemetry.Subscriber[ClusterSample] {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fan.Subscribe(buffer)
}

// SetBudget changes a running cluster's global power budget live; the
// assignment rescales to the new budget immediately.
func (c *Cluster) SetBudget(watts float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning {
		return fmt.Errorf("%w: cluster %s is %s", ErrNotRunning, c.id, c.state)
	}
	if err := c.coord.SetBudget(watts); err != nil {
		return err
	}
	c.refreshStatusLocked()
	return nil
}

// SetNodeCap reassigns one node's share of a running cluster directly,
// bypassing the policy until the next epoch's rebalance.
func (c *Cluster) SetNodeCap(i int, watts float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning {
		return fmt.Errorf("%w: cluster %s is %s", ErrNotRunning, c.id, c.state)
	}
	if i < 0 || i >= c.coord.NodeCount() {
		return fmt.Errorf("%w: cluster %s has no node %d", ErrNotFound, c.id, i)
	}
	if err := c.coord.SetNodeCap(i, watts); err != nil {
		return err
	}
	c.refreshStatusLocked()
	return nil
}

// refreshStatusLocked re-snapshots the coordinator and republishes the
// status view after a mutation, so the change is visible to Status before
// the next epoch runs. Callers hold c.mu.
func (c *Cluster) refreshStatusLocked() {
	c.coord.SnapshotInto(&c.lastSnap)
	c.publishStatus(&c.lastSnap)
}

// InjectFault schedules a fault scenario against one node or a whole
// budget domain of a running cluster, onset relative to the cluster's
// current simulated time.
func (c *Cluster) InjectFault(f ClusterFaultConfig) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning {
		return fmt.Errorf("%w: cluster %s is %s", ErrNotRunning, c.id, c.state)
	}
	if err := c.injectLocked(f); err != nil {
		return err
	}
	c.refreshStatusLocked()
	return nil
}

// injectLocked routes one fault to its target, mapping engine errors to
// the API error taxonomy. Callers hold c.mu (or own the cluster solely).
func (c *Cluster) injectLocked(f ClusterFaultConfig) error {
	switch {
	case f.Node != nil && f.Domain != "":
		return fmt.Errorf("%w: fault targets both node and domain", ErrBadConfig)
	case f.Node == nil && f.Domain == "":
		return fmt.Errorf("%w: fault needs a node or domain target", ErrBadConfig)
	case f.Node != nil:
		i := *f.Node
		if i < 0 || i >= c.coord.NodeCount() {
			return fmt.Errorf("%w: cluster %s has no node %d", ErrNotFound, c.id, i)
		}
		if err := c.coord.InjectNodeFault(i, f.scenario()); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		return nil
	default:
		if _, err := c.coord.InjectDomainFault(f.Domain, f.scenario()); err != nil {
			if errors.Is(err, faults.ErrInvalidScenario) {
				return fmt.Errorf("%w: %v", ErrBadConfig, err)
			}
			return fmt.Errorf("%w: %v", ErrNotFound, err)
		}
		return nil
	}
}

// FaultInfo reports the cluster's scheduled faults, observed transitions,
// and — when health tracking is on — the fleet health view.
func (c *Cluster) FaultInfo() ClusterFaultInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	info := ClusterFaultInfo{Nodes: []ClusterNodeFaults{}, Events: []ClusterFaultEvent{}}
	if c.state == StateFailed {
		return info
	}
	n := c.coord.NodeCount()
	for i := 0; i < n; i++ {
		var scs []FaultConfig
		for _, sc := range c.coord.NodeFaults(i) {
			scs = append(scs, faultConfigOf(sc))
		}
		for _, sc := range c.coord.NodeSessionFaults(i) {
			scs = append(scs, faultConfigOf(sc))
		}
		if len(scs) == 0 {
			continue
		}
		act := c.coord.NodeFaultsActive(i) + c.coord.NodeSessionFaultsActive(i)
		info.Nodes = append(info.Nodes, ClusterNodeFaults{Node: i, Scenarios: scs, Active: act})
		info.Active += act
	}
	for _, ev := range c.coord.ChaosEvents() {
		info.Events = append(info.Events, ClusterFaultEvent{SimS: ev.T.Seconds(), Node: ev.Node, Fault: ev.Scenario.String(), Active: ev.Active})
	}
	for i := 0; i < n; i++ {
		for _, ev := range c.coord.NodeSessionFaultEvents(i) {
			info.Events = append(info.Events, ClusterFaultEvent{SimS: ev.T.Seconds(), Node: i, Fault: ev.Scenario.String(), Active: ev.Active})
		}
	}
	sort.SliceStable(info.Events, func(a, b int) bool {
		return info.Events[a].SimS < info.Events[b].SimS
	})
	if c.healthOn {
		states := c.coord.HealthStates(nil)
		info.Health = make([]string, len(states))
		for i, s := range states {
			info.Health[i] = s.String()
		}
		for _, ev := range c.coord.HealthEvents() {
			info.HealthEvents = append(info.HealthEvents, ClusterHealthEvent{
				SimS: ev.T.Seconds(), Node: ev.Node,
				From: ev.From.String(), To: ev.To.String(), Reason: ev.Reason,
			})
		}
		info.Quarantined = c.coord.QuarantinedCount()
		info.ReclaimedWatts = c.coord.ReclaimedWatts()
	}
	return info
}

// Status reports the cluster's current state, served from the published
// status view: it never waits on the epoch lock (an epoch step at fleet
// scale holds it for hundreds of milliseconds), and a failed cluster keeps
// answering with its last coherent view. The Nodes and Domains slices are
// copied out, since the published backing arrays are reused across epochs.
func (c *Cluster) Status() ClusterStatus {
	c.pubMu.Lock()
	st := c.pub
	st.Nodes = append([]ClusterNodeStatus(nil), c.pub.Nodes...)
	st.Domains = append([]ClusterDomainStatus(nil), c.pub.Domains...)
	c.pubMu.Unlock()
	// ID is immutable after creation and assigned after build, so it is
	// read directly rather than through the published view.
	st.ID = c.id
	st.Epoch = c.epoch.Load()
	st.Subscribers = c.fan.Subscribers()
	st.StreamDropped = c.fan.TotalDropped()
	return st
}

// publishStatus rebuilds the published status view from a coordinator
// snapshot, reusing the view's own backing arrays so the per-epoch refresh
// is allocation-free in steady state. Callers hold c.mu (or solely own the
// cluster during build); sn may alias the reused lastSnap buffer.
func (c *Cluster) publishStatus(sn *cluster.Snapshot) {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	st := &c.pub
	st.Name = c.cfg.Name
	st.State = c.state
	st.Policy = sn.Policy
	st.SimS = sn.Now.Seconds()
	st.BudgetWatts = sn.Budget
	st.TotalPowerWatts = sn.TotalPower
	st.TotalPerfHBs = sn.TotalRate
	st.Domains = domainStatusesInto(st.Domains[:0], sn.Domains)
	st.Quarantined = sn.Quarantined
	st.ReclaimedWatts = sn.ReclaimedWatts
	st.FailReason = c.failReason
	nodes := st.Nodes[:0]
	for i, ns := range sn.Nodes {
		ncs := ClusterNodeStatus{
			Index:          i,
			Name:           ns.Name,
			Technique:      c.nodeTech[i],
			Workloads:      c.nodeApps[i],
			CapWatts:       ns.CapWatts,
			MeanPowerWatts: ns.MeanPower,
			MeanRateHBs:    ns.MeanRate,
		}
		if c.healthOn {
			ncs.Health = ns.Health.String()
		}
		nodes = append(nodes, ncs)
	}
	st.Nodes = nodes
}

// publishState refreshes only the state and failure reason of the
// published view, leaving the last coherent snapshot in place — the
// failed/stopped cluster's "still queryable" guarantee. Callers hold c.mu.
func (c *Cluster) publishState() {
	c.pubMu.Lock()
	c.pub.State = c.state
	c.pub.FailReason = c.failReason
	c.pubMu.Unlock()
}

// StepOnce advances a detached cluster one epoch synchronously and reports
// whether it is still running — the deterministic entry point for tests and
// the perf harness.
func (c *Cluster) StepOnce() bool { return c.tick() }

// GrowTraces preallocates every node's telemetry traces for d of further
// simulated time. Harnesses that know how many epochs they will step (the
// perf benchmarks do) use it so the measured steady state is free of
// per-node trace reallocation.
func (c *Cluster) GrowTraces(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateFailed {
		c.coord.GrowTraces(d)
	}
}

// tick steps one coordinator epoch and publishes the epoch sample. It
// reports whether the loop should continue. The stream fan-out happens
// inside advance, under the cluster lock; only the pipeline publish (which
// copies the batch) runs outside it.
func (c *Cluster) tick() bool {
	smp, publish, cont := c.advance()
	if publish {
		c.publishPipeline(smp)
	}
	return cont
}

// StreamDropped counts samples lost across every epoch-stream subscriber
// this cluster ever had.
func (c *Cluster) StreamDropped() uint64 { return c.fan.TotalDropped() }

// publishPipeline routes the epoch's metric families — budget, aggregate
// power and perf, and per-node cap shares — through the manager's
// telemetry router. Detached clusters have no router and skip it.
func (c *Cluster) publishPipeline(smp ClusterSample) {
	if c.router == nil {
		return
	}
	b := c.pubBuf[:0]
	b = append(b,
		pipeline.Sample{Family: "pupil_cluster_budget_watts", Cluster: c.id, SimS: smp.SimS, Value: smp.BudgetWatts},
		pipeline.Sample{Family: "pupil_cluster_power_watts", Cluster: c.id, SimS: smp.SimS, Value: smp.TotalPowerWatts},
		pipeline.Sample{Family: "pupil_cluster_perf_hbs", Cluster: c.id, SimS: smp.SimS, Value: smp.TotalPerfHBs})
	for _, d := range smp.Domains {
		b = append(b,
			pipeline.Sample{Family: "pupil_cluster_domain_budget_watts", Cluster: c.id, Domain: d.Name, SimS: smp.SimS, Value: d.BudgetWatts},
			pipeline.Sample{Family: "pupil_cluster_domain_power_watts", Cluster: c.id, Domain: d.Name, SimS: smp.SimS, Value: d.MeanPowerWatts},
			pipeline.Sample{Family: "pupil_cluster_domain_fair_share_min", Cluster: c.id, Domain: d.Name, SimS: smp.SimS, Value: d.FairShareMin})
	}
	for i, capW := range smp.CapsWatts {
		b = append(b, pipeline.Sample{Family: "pupil_cluster_node_cap_watts", Cluster: c.id, Domain: c.nodeDomain(i), Node: c.nodeName(i), SimS: smp.SimS, Value: capW})
	}
	if smp.NodeHealth != nil {
		for i, h := range smp.NodeHealth {
			b = append(b, pipeline.Sample{Family: "pupil_cluster_node_health", Cluster: c.id, Domain: c.nodeDomain(i), Node: c.nodeName(i), State: h, SimS: smp.SimS, Value: healthStateValue[h]})
		}
		b = append(b,
			pipeline.Sample{Family: "pupil_cluster_quarantined", Cluster: c.id, SimS: smp.SimS, Value: float64(smp.Quarantined)},
			pipeline.Sample{Family: "pupil_cluster_budget_reclaimed_watts", Cluster: c.id, SimS: smp.SimS, Value: smp.ReclaimedWatts})
	}
	c.router.PublishBatch(b)
	c.pubBuf = b
}

// healthStateValue maps a health-state label back to its numeric level for
// the pupil_cluster_node_health gauge (0 healthy .. 3 recovering), so
// dashboards can alert on value >= 2 while keeping the label for humans.
var healthStateValue = map[string]float64{
	cluster.Healthy.String():     0,
	cluster.Suspect.String():     1,
	cluster.Quarantined.String(): 2,
	cluster.Recovering.String():  3,
}

// nodeName returns node i's resolved name (the coordinator's label).
func (c *Cluster) nodeName(i int) string {
	if i < len(c.nodeNames) {
		return c.nodeNames[i]
	}
	return ""
}

// nodeDomain returns node i's leaf (rack) domain name; "" when flat, so
// flat clusters' series keep their exact pre-hierarchy label sets.
func (c *Cluster) nodeDomain(i int) string {
	if i < len(c.nodeDomains) {
		return c.nodeDomains[i]
	}
	return ""
}

// advance runs one locked coordinator epoch. A panic escaping a node's
// session or the policy marks this cluster failed — last coherent state
// still queryable — instead of crashing the daemon.
func (c *Cluster) advance() (smp ClusterSample, publish, cont bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			c.state = StateFailed
			c.failReason = fmt.Sprintf("cluster panic: %v", r)
			log.Printf("server: cluster %s failed: %v\n%s", c.id, r, debug.Stack())
			c.publishState()
			smp, publish, cont = ClusterSample{}, false, false
		}
	}()
	if c.state != StateRunning {
		return ClusterSample{}, false, false
	}
	if err := c.coord.Step(c.epochSim); err != nil {
		c.state = StateFailed
		c.failReason = fmt.Sprintf("cluster step: %v", err)
		log.Printf("server: cluster %s failed: %v", c.id, err)
		c.publishState()
		return ClusterSample{}, false, false
	}
	c.coord.SnapshotInto(&c.lastSnap)
	sn := &c.lastSnap
	caps, pow := c.capsBuf[:0], c.powerBuf[:0]
	for _, ns := range sn.Nodes {
		caps = append(caps, ns.CapWatts)
		pow = append(pow, ns.MeanPower)
	}
	c.capsBuf, c.powerBuf = caps, pow
	doms := domainStatusesInto(c.domBuf[:0], sn.Domains)
	c.domBuf = doms
	smp = ClusterSample{
		Cluster:         c.id,
		Epoch:           c.epoch.Add(1),
		SimS:            sn.Now.Seconds(),
		BudgetWatts:     sn.Budget,
		CapsWatts:       caps,
		NodePowerWatts:  pow,
		TotalPowerWatts: sn.TotalPower,
		TotalPerfHBs:    sn.TotalRate,
		Quarantined:     sn.Quarantined,
		ReclaimedWatts:  sn.ReclaimedWatts,
	}
	if len(doms) > 0 {
		smp.Domains = doms
	}
	if c.healthOn {
		// HealthState.String returns interned constants, so this rebuild
		// costs no allocations once the buffer has grown.
		hs := c.healthBuf[:0]
		for _, ns := range sn.Nodes {
			hs = append(hs, ns.Health.String())
		}
		c.healthBuf = hs
		smp.NodeHealth = hs
	}
	if c.fan.Subscribers() > 0 {
		// Subscriber rings retain the sample past this epoch, so it must
		// not alias the reused buffers. Subscribe takes the same lock, so
		// no subscriber can appear between this check and the publish.
		smp.CapsWatts = append([]float64(nil), caps...)
		smp.NodePowerWatts = append([]float64(nil), pow...)
		if smp.Domains != nil {
			smp.Domains = append([]ClusterDomainStatus(nil), doms...)
		}
		if smp.NodeHealth != nil {
			smp.NodeHealth = append([]string(nil), smp.NodeHealth...)
		}
	}
	c.fan.Publish(smp)
	if c.maxSim > 0 && sn.Now >= c.maxSim {
		c.state = StateDone
	}
	c.publishStatus(sn)
	return smp, true, c.state == StateRunning
}

// run is the cluster's epoch loop, paced like the node tick loop: each tick
// steps one simulated epoch, every tickReal of real time (or back-to-back
// when free-running).
func (c *Cluster) run(ctx context.Context) {
	defer close(c.done)
	defer c.fan.Close()
	var tickC <-chan time.Time
	if c.tickReal > 0 {
		t := time.NewTicker(c.tickReal)
		defer t.Stop()
		tickC = t.C
	}
	for {
		if tickC != nil {
			select {
			case <-ctx.Done():
				c.setState(StateStopped)
				return
			case <-tickC:
			}
		} else {
			select {
			case <-ctx.Done():
				c.setState(StateStopped)
				return
			default:
				// Free-running: yield between epochs so API handlers and
				// other loops are not starved for a full preemption slice
				// on busy hosts (see the node run loop).
				runtime.Gosched()
			}
		}
		if !c.tick() {
			return
		}
	}
}

func (c *Cluster) setState(s State) {
	c.mu.Lock()
	if c.state == StateRunning {
		c.state = s
	}
	c.publishState()
	c.mu.Unlock()
}

// CreateCluster builds a cluster from its configuration and starts its
// epoch loop.
func (m *Manager) CreateCluster(cfg ClusterConfig) (*Cluster, error) {
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.nextClusterID++
	c.id = fmt.Sprintf("c%d", m.nextClusterID)
	c.router = m.router
	ctx, cancel := context.WithCancel(m.ctx)
	c.cancel = cancel
	m.clusters[c.id] = c
	m.clusterOrder = append(m.clusterOrder, c.id)
	m.wg.Add(1)
	m.mu.Unlock()

	id := c.id
	c.fan.SetLagWarn(5*time.Second, func(total uint64) {
		log.Printf("server: cluster %s stream subscriber lagging; %d samples dropped so far", id, total)
	})

	m.clustersCreated.Add(1)
	go func() {
		defer m.wg.Done()
		c.run(ctx)
	}()
	return c, nil
}

// NewDetachedCluster builds a cluster whose epoch loop is not started:
// callers step it synchronously with StepOnce. The perf harness benchmarks
// the epoch path this way, without goroutine scheduling noise.
func NewDetachedCluster(cfg ClusterConfig) (*Cluster, error) {
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	c.id = "detached"
	return c, nil
}

// GetCluster looks a cluster up by ID.
func (m *Manager) GetCluster(id string) (*Cluster, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.clusters[id]
	return c, ok
}

// Clusters lists the live clusters in creation order.
func (m *Manager) Clusters() []*Cluster {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Cluster, 0, len(m.clusterOrder))
	for _, id := range m.clusterOrder {
		out = append(out, m.clusters[id])
	}
	return out
}

// ClustersCreated and ClustersDeleted report lifetime counters for the
// exporter.
func (m *Manager) ClustersCreated() uint64 { return m.clustersCreated.Load() }

// ClustersDeleted reports how many clusters have been torn down.
func (m *Manager) ClustersDeleted() uint64 { return m.clustersDeleted.Load() }

// DeleteCluster stops a cluster's epoch loop, waits for it to drain, and
// removes it from the registry.
func (m *Manager) DeleteCluster(id string) error {
	m.mu.Lock()
	c, ok := m.clusters[id]
	if ok {
		delete(m.clusters, id)
		for i, v := range m.clusterOrder {
			if v == id {
				m.clusterOrder = append(m.clusterOrder[:i], m.clusterOrder[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	c.cancel()
	<-c.done
	m.clustersDeleted.Add(1)
	return nil
}

// buildCluster turns a ClusterConfig into an unstarted Cluster: node specs
// resolved through the same platform/technique/workload tables as single
// nodes, the policy by name, and the coordinator validated.
func buildCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("%w: cluster has no nodes", ErrBadConfig)
	}
	policy, err := cluster.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	c := &Cluster{
		cfg:      cfg,
		epochSim: DefaultClusterEpochSim,
		tickReal: DefaultClusterTickReal,
		state:    StateRunning,
		fan:      telemetry.NewFanout[ClusterSample](),
		done:     make(chan struct{}),
	}
	if cfg.EpochSimMS > 0 {
		c.epochSim = time.Duration(cfg.EpochSimMS) * time.Millisecond
	}
	if cfg.TickRealMS > 0 {
		c.tickReal = time.Duration(cfg.TickRealMS) * time.Millisecond
	}
	if cfg.FreeRun {
		c.tickReal = 0
	}
	if cfg.MaxSimS > 0 {
		c.maxSim = time.Duration(cfg.MaxSimS * float64(time.Second))
	}

	specs := make([]cluster.NodeSpec, len(cfg.Nodes))
	for i, nc := range cfg.Nodes {
		plat, err := platformByName(nc.Platform)
		if err != nil {
			return nil, err
		}
		tech := nc.Technique
		if tech == "" {
			tech = "PUPiL"
		}
		// Validate the technique now so a bad name fails the create, not
		// the coordinator's deferred constructor call.
		if _, err := newController(tech, plat); err != nil {
			return nil, err
		}
		wl, err := resolveWorkloads(NodeConfig{Mix: nc.Mix, Workloads: nc.Workloads}, plat)
		if err != nil {
			return nil, fmt.Errorf("cluster node %d: %w", i, err)
		}
		name := nc.Name
		if name == "" {
			name = fmt.Sprintf("node%d", i)
		}
		apps := make([]string, len(wl))
		for j, s := range wl {
			apps[j] = s.Profile.Name
		}
		c.nodeTech = append(c.nodeTech, tech)
		c.nodeNames = append(c.nodeNames, name)
		c.nodeApps = append(c.nodeApps, apps)
		specs[i] = cluster.NodeSpec{
			Name:     name,
			Platform: plat,
			Specs:    wl,
			NewController: func(p *machine.Platform) core.Controller {
				ctrl, err := newController(tech, p)
				if err != nil {
					panic(err) // validated above; unreachable
				}
				return ctrl
			},
		}
	}

	var topo cluster.Topology
	if cfg.Topology != nil {
		topo = cluster.Topology{
			NodesPerRack:   cfg.Topology.NodesPerRack,
			RacksPerRow:    cfg.Topology.RacksPerRow,
			RebalanceEvery: cfg.Topology.RebalanceEvery,
		}
	}
	coord, err := cluster.NewCoordinator(cluster.Config{
		Nodes:       specs,
		BudgetWatts: cfg.BudgetWatts,
		Epoch:       c.epochSim,
		Policy:      policy,
		Seed:        cfg.Seed,
		FloorWatts:  cfg.FloorWatts,
		Parallel:    cfg.Parallel,
		Topology:    topo,
		Health:      cfg.Health.engine(),
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	c.coord = coord
	c.healthOn = cfg.Health != nil
	c.nodeDomains = coord.NodeDomains()
	c.lastSnap = coord.Snapshot()
	c.publishStatus(&c.lastSnap)
	for i, f := range cfg.Faults {
		if err := c.injectLocked(f); err != nil {
			return nil, fmt.Errorf("cluster fault %d: %w", i, err)
		}
	}
	return c, nil
}
