package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// healthClusterBody is a 4-node hierarchical cluster with fleet health
// tracking on, used by the fault API tests. The probe dwell is set far
// beyond any test horizon so a quarantined node stays benched: a free-run
// cluster races ahead of the HTTP client, and the assertions need a
// steady state, not a probe/re-quarantine oscillation.
const healthClusterBody = `{
	"name": "chaos-rig",
	"policy": "demand-shift",
	"budget_watts": 600,
	"free_run": true,
	"seed": 3,
	"health": {"probe_after_epochs": 1000000},
	"topology": {"nodes_per_rack": 2},
	"nodes": [
		{"technique": "RAPL", "workloads": [{"benchmark": "blackscholes", "threads": 32}]},
		{"technique": "RAPL", "workloads": [{"benchmark": "STREAM", "threads": 8}]},
		{"technique": "RAPL", "workloads": [{"benchmark": "swaptions", "threads": 32}]},
		{"technique": "RAPL", "workloads": [{"benchmark": "kmeans", "threads": 8}]}
	]
}`

// The fleet fault-tolerance acceptance scenario over REST: create a
// health-tracking cluster, crash one node through the fault endpoint,
// watch the stream report it quarantined with its budget reclaimed, read
// the transition log back, and find the health families in the exporter.
func TestClusterFaultAPIEndToEnd(t *testing.T) {
	_, ts := testClient(t)

	resp, created := doJSON(t, "POST", ts.URL+"/v1/clusters", healthClusterBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d body %v", resp.StatusCode, created)
	}
	id := created["id"].(string)
	nodes, _ := created["nodes"].([]any)
	if len(nodes) != 4 {
		t.Fatalf("created cluster has %d nodes: %v", len(nodes), created)
	}
	for i, n := range nodes {
		if h := n.(map[string]any)["health"]; h != "healthy" {
			t.Errorf("node %d created with health %v, want healthy", i, h)
		}
	}

	// Crash node 0 for longer than the test could ever observe: the
	// free-running cluster may step thousands of epochs before the stream
	// below attaches, and the crash must still be in force when it does.
	resp, body := doJSON(t, "POST", ts.URL+"/v1/clusters/"+id+"/faults",
		`{"kind": "crash", "target": "node", "duration_s": 1000000, "node": 0}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("inject: status %d body %v", resp.StatusCode, body)
	}
	fnodes, _ := body["nodes"].([]any)
	if len(fnodes) != 1 {
		t.Fatalf("inject response lists %d nodes, want 1: %v", len(fnodes), body)
	}

	// Stream epochs until the health machinery benches the node and
	// reclaims its share down to the floor.
	stream, err := http.Get(ts.URL + "/v1/clusters/" + id + "/stream?buffer=256&max=400")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	benched := false
	for sc.Scan() {
		var smp ClusterSample
		if err := json.Unmarshal(sc.Bytes(), &smp); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if len(smp.NodeHealth) != 4 {
			t.Fatalf("health cluster sample carries %d health states, want 4: %+v", len(smp.NodeHealth), smp)
		}
		if smp.NodeHealth[0] == "quarantined" {
			benched = true
			if smp.Quarantined < 1 {
				t.Errorf("quarantined node but Quarantined = %d", smp.Quarantined)
			}
			if smp.ReclaimedWatts <= 0 {
				t.Errorf("quarantined node but ReclaimedWatts = %v", smp.ReclaimedWatts)
			}
			if smp.CapsWatts[0] > 25.000001 {
				t.Errorf("quarantined node holds %v W, want the 25 W floor", smp.CapsWatts[0])
			}
			break
		}
	}
	if !benched {
		t.Fatal("stream never reported the crashed node quarantined")
	}

	// The fault log has the onset and the health transitions.
	resp, info := doJSON(t, "GET", ts.URL+"/v1/clusters/"+id+"/faults", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faults: status %d", resp.StatusCode)
	}
	if act := info["active"].(float64); act < 1 {
		t.Errorf("active = %v, want >= 1", act)
	}
	events, _ := info["events"].([]any)
	if len(events) == 0 {
		t.Error("fault log has no events after an observed onset")
	}
	hevents, _ := info["health_events"].([]any)
	if len(hevents) < 2 {
		t.Errorf("health log has %d events, want the suspect and quarantine transitions", len(hevents))
	}
	health, _ := info["health"].([]any)
	if len(health) != 4 || health[0] != "quarantined" {
		t.Errorf("health vector = %v, want node 0 quarantined", health)
	}
	if info["quarantined"].(float64) < 1 || info["reclaimed_watts"].(float64) <= 0 {
		t.Errorf("fault info quarantine accounting = %v / %v", info["quarantined"], info["reclaimed_watts"])
	}

	// The exporter carries the health families, state-labeled.
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	var sb strings.Builder
	if _, err := bufio.NewReader(metricsResp.Body).WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	metrics := sb.String()
	for _, want := range []string{
		`pupil_cluster_node_health{cluster="` + id + `",domain="rack0",node="node0",state="quarantined"} 2`,
		`pupil_cluster_quarantined{cluster="` + id + `"}`,
		`pupil_cluster_budget_reclaimed_watts{cluster="` + id + `"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("exporter missing %q", want)
		}
	}
}

func TestClusterFaultAPIErrors(t *testing.T) {
	mgr, ts := testClient(t)

	resp, created := doJSON(t, "POST", ts.URL+"/v1/clusters", healthClusterBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d body %v", resp.StatusCode, created)
	}
	id := created["id"].(string)

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown cluster", "/v1/clusters/c99/faults", `{"kind":"crash","target":"node","duration_s":5,"node":0}`, 404},
		{"both targets", "/v1/clusters/" + id + "/faults", `{"kind":"crash","target":"node","duration_s":5,"node":0,"domain":"rack0"}`, 400},
		{"no target", "/v1/clusters/" + id + "/faults", `{"kind":"crash","target":"node","duration_s":5}`, 400},
		{"bad node index", "/v1/clusters/" + id + "/faults", `{"kind":"crash","target":"node","duration_s":5,"node":9}`, 404},
		{"unknown domain", "/v1/clusters/" + id + "/faults", `{"kind":"crash","target":"node","duration_s":5,"domain":"rack9"}`, 404},
		{"bad kind", "/v1/clusters/" + id + "/faults", `{"kind":"melt","target":"node","duration_s":5,"node":0}`, 400},
		{"flap without period", "/v1/clusters/" + id + "/faults", `{"kind":"flap","target":"node","duration_s":5,"node":0}`, 400},
		{"unknown field", "/v1/clusters/" + id + "/faults", `{"kind":"crash","target":"node","duration_s":5,"node":0,"bogus":1}`, 400},
		{"junk body", "/v1/clusters/" + id + "/faults", `{`, 400},
	}
	for _, tc := range cases {
		resp, body := doJSON(t, "POST", ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (body %v)", tc.name, resp.StatusCode, tc.want, body)
		}
	}

	// Node-scoped scenarios route through to the member node's injector:
	// a controller stall is accepted and listed.
	resp, body := doJSON(t, "POST", ts.URL+"/v1/clusters/"+id+"/faults",
		`{"kind":"stall","target":"controller","duration_s":2,"node":1}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("node-scoped inject: status %d body %v", resp.StatusCode, body)
	}

	// A rack-correlated fault by domain name is accepted.
	resp, body = doJSON(t, "POST", ts.URL+"/v1/clusters/"+id+"/faults",
		`{"kind":"corrupt","target":"demand-report","duration_s":2,"magnitude":4,"domain":"rack1"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("domain inject: status %d body %v", resp.StatusCode, body)
	}
	fnodes, _ := body["nodes"].([]any)
	hit := 0
	for _, n := range fnodes {
		idx := int(n.(map[string]any)["node"].(float64))
		if idx == 2 || idx == 3 {
			hit++
		}
	}
	if hit != 2 {
		t.Errorf("rack1 fault reached %d of its 2 nodes: %v", hit, body)
	}

	// Injection against a finished cluster is a 409 conflict.
	done, err := mgr.CreateCluster(ClusterConfig{
		BudgetWatts: 200, FreeRun: true, MaxSimS: 1, Seed: 1,
		Nodes: []ClusterNodeConfig{
			{Technique: "RAPL", Workloads: []WorkloadConfig{{Benchmark: "kmeans", Threads: 8}}},
			{Technique: "RAPL", Workloads: []WorkloadConfig{{Benchmark: "STREAM", Threads: 8}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("MaxSimS cluster never finished")
	}
	resp, body = doJSON(t, "POST", ts.URL+"/v1/clusters/"+done.ID()+"/faults",
		`{"kind":"crash","target":"node","duration_s":5,"node":0}`)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("inject on done cluster: status %d body %v, want 409", resp.StatusCode, body)
	}
}

// Faults scheduled in the create request are live from epoch 0, and a
// health-off cluster keeps its exact pre-health JSON surface: no health
// keys in status or samples.
func TestClusterCreationFaultsAndHealthOffSurface(t *testing.T) {
	node0 := 0
	c, err := NewDetachedCluster(ClusterConfig{
		BudgetWatts: 300,
		Seed:        5,
		Nodes: []ClusterNodeConfig{
			{Technique: "RAPL", Workloads: []WorkloadConfig{{Benchmark: "blackscholes", Threads: 32}}},
			{Technique: "RAPL", Workloads: []WorkloadConfig{{Benchmark: "STREAM", Threads: 8}}},
		},
		Faults: []ClusterFaultConfig{
			{FaultConfig: FaultConfig{Kind: "hang", Target: "node", DurationS: 2}, Node: &node0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	info := c.FaultInfo()
	if len(info.Nodes) != 1 || info.Nodes[0].Node != 0 {
		t.Fatalf("creation fault not listed: %+v", info)
	}
	if info.Health != nil || info.Quarantined != 0 {
		t.Errorf("health-off cluster leaks health info: %+v", info)
	}

	for i := 0; i < 3; i++ {
		if !c.StepOnce() {
			t.Fatal("cluster stopped early")
		}
	}
	raw, err := json.Marshal(c.Status())
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{`"health"`, `"quarantined"`, `"reclaimed_watts"`, `"node_health"`} {
		if strings.Contains(string(raw), forbidden) {
			t.Errorf("health-off status carries %s: %s", forbidden, raw)
		}
	}
	if info := c.FaultInfo(); len(info.Events) == 0 {
		t.Error("hang onset never logged")
	}

	// Bad creation faults fail the create with a 400-class error.
	if _, err := NewDetachedCluster(ClusterConfig{
		BudgetWatts: 300, Seed: 5,
		Nodes: []ClusterNodeConfig{
			{Technique: "RAPL", Workloads: []WorkloadConfig{{Benchmark: "STREAM", Threads: 8}}},
		},
		Faults: []ClusterFaultConfig{
			{FaultConfig: FaultConfig{Kind: "crash", Target: "node", DurationS: 2}},
		},
	}); err == nil {
		t.Error("creation fault without a target was accepted")
	}
}

// Epoch samples handed to stream subscribers must not alias the epoch
// loop's reused scratch buffers: two consecutive samples carry distinct
// backing arrays, and a sample already in a ring never mutates.
func TestClusterSampleNoBufferAliasing(t *testing.T) {
	c, err := NewDetachedCluster(ClusterConfig{
		BudgetWatts: 300,
		Policy:      "demand-shift",
		Seed:        9,
		Health:      &ClusterHealthConfig{},
		Topology:    &ClusterTopologyConfig{NodesPerRack: 1},
		Nodes: []ClusterNodeConfig{
			{Technique: "RAPL", Workloads: []WorkloadConfig{{Benchmark: "blackscholes", Threads: 32}}},
			{Technique: "RAPL", Workloads: []WorkloadConfig{{Benchmark: "STREAM", Threads: 8}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := c.Subscribe(8)
	defer sub.Cancel()
	if !c.StepOnce() || !c.StepOnce() {
		t.Fatal("cluster stopped early")
	}
	a, b := <-sub.C(), <-sub.C()
	if a.Epoch != 1 || b.Epoch != 2 {
		t.Fatalf("epochs %d, %d, want 1, 2", a.Epoch, b.Epoch)
	}
	if &a.CapsWatts[0] == &b.CapsWatts[0] {
		t.Error("consecutive samples share a caps backing array")
	}
	if &a.NodePowerWatts[0] == &b.NodePowerWatts[0] {
		t.Error("consecutive samples share a power backing array")
	}
	if &a.Domains[0] == &b.Domains[0] {
		t.Error("consecutive samples share a domains backing array")
	}
	if &a.NodeHealth[0] == &b.NodeHealth[0] {
		t.Error("consecutive samples share a health backing array")
	}
}

// A subscriber churn storm against a live cluster stream: concurrent
// subscribe/read/cancel cycles leak nothing, and a subscriber present at
// teardown still receives the final epoch snapshot before its channel
// closes.
func TestClusterStreamChurnStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	mgr := NewManager()
	c, err := mgr.CreateCluster(ClusterConfig{
		BudgetWatts: 300,
		FreeRun:     true,
		Seed:        2,
		Nodes: []ClusterNodeConfig{
			{Technique: "RAPL", Workloads: []WorkloadConfig{{Benchmark: "kmeans", Threads: 8}}},
			{Technique: "RAPL", Workloads: []WorkloadConfig{{Benchmark: "STREAM", Threads: 8}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	const workers, cycles = 8, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cycles; i++ {
				sub := c.Subscribe(2)
				select {
				case smp, ok := <-sub.C():
					if ok && (smp.Epoch == 0 || len(smp.CapsWatts) != 2) {
						t.Errorf("malformed churn sample %+v", smp)
					}
				case <-time.After(15 * time.Second):
					t.Error("free-running cluster starved a subscriber")
				}
				sub.Cancel()
			}
		}()
	}
	wg.Wait()

	// The survivor keeps streaming across the teardown and sees the final
	// epoch before close. Read one sample first so the delete cannot win
	// the race before any epoch reaches the fresh ring.
	survivor := c.Subscribe(4096)
	var last ClusterSample
	select {
	case last = <-survivor.C():
	case <-time.After(10 * time.Second):
		t.Fatal("survivor received nothing from the free-running cluster")
	}
	if err := mgr.DeleteCluster(c.ID()); err != nil {
		t.Fatal(err)
	}
	for smp := range survivor.C() {
		last = smp
	}
	finalEpoch := c.Epoch()
	if last.Epoch != finalEpoch {
		t.Errorf("survivor's last sample is epoch %d, cluster finished at %d", last.Epoch, finalEpoch)
	}
	if survivor.Dropped() != 0 {
		t.Errorf("survivor dropped %d samples with a 4096 ring", survivor.Dropped())
	}

	if st := c.Status(); st.Subscribers != 0 {
		t.Errorf("churned cluster retains %d subscribers", st.Subscribers)
	}
	mgr.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d -> %d across the stream churn storm", before, after)
	}
}
