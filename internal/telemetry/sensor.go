package telemetry

import (
	"time"

	"pupil/internal/sim"
)

// Reading is one timestamped sensor measurement.
type Reading struct {
	T time.Duration
	V float64
}

// Window is a bounded sliding window of readings, oldest first. Storage is
// a circular buffer, so adding a reading is O(1) even when the window is
// full — the sensor tick is on the simulation's hot path and the old
// shift-on-evict cost dominated whole-run profiles.
type Window struct {
	data  []Reading // ring storage, allocated lazily on first Add
	cap   int
	head  int // index of the oldest retained reading
	count int
	vals  []float64 // scratch reused by Since
}

// NewWindow returns a window retaining at most capacity readings.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 1
	}
	return &Window{cap: capacity}
}

// Add appends a reading, evicting the oldest when full.
func (w *Window) Add(r Reading) {
	if w.data == nil {
		w.data = make([]Reading, w.cap)
	}
	if w.count == w.cap {
		w.data[w.head] = r
		w.head++
		if w.head == w.cap {
			w.head = 0
		}
		return
	}
	idx := w.head + w.count
	if idx >= w.cap {
		idx -= w.cap
	}
	w.data[idx] = r
	w.count++
}

// Len returns the number of retained readings.
func (w *Window) Len() int { return w.count }

// at returns the i-th retained reading, oldest first.
func (w *Window) at(i int) Reading {
	idx := w.head + i
	if idx >= w.cap {
		idx -= w.cap
	}
	return w.data[idx]
}

// Since returns the values of readings taken at or after t, oldest first.
// The returned slice is scratch owned by the window and is overwritten by
// the next Since call; callers consume it before touching the window again.
func (w *Window) Since(t time.Duration) []float64 {
	// Readings arrive in time order, so binary-search the first index at
	// or after t instead of scanning the whole ring.
	lo, hi := 0, w.count
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if w.at(mid).T < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == w.count {
		return nil
	}
	w.vals = w.vals[:0]
	for i := lo; i < w.count; i++ {
		w.vals = append(w.vals, w.at(i).V)
	}
	return w.vals
}

// Last returns the most recent reading, or a zero Reading when empty.
func (w *Window) Last() Reading {
	if w.count == 0 {
		return Reading{}
	}
	return w.at(w.count - 1)
}

// FilteredMean applies the paper's 3-sigma filter to the readings taken at
// or after t and returns the filtered mean plus the raw sample count.
func (w *Window) FilteredMean(t time.Duration) (mean float64, samples int) {
	vals := w.Since(t)
	m, _ := SigmaFilter(vals, 3)
	return m, len(vals)
}

// NoiseSpec configures a sensor's imperfection: multiplicative Gaussian
// noise plus occasional outliers (a page fault or SMI landing inside the
// measurement window).
type NoiseSpec struct {
	// RelStdDev is the standard deviation of multiplicative noise
	// (0.01 = 1% jitter).
	RelStdDev float64
	// OutlierProb is the per-sample probability of an outlier.
	OutlierProb float64
	// OutlierMag is the relative magnitude of outliers (0.5 = the sample
	// reads 50% off).
	OutlierMag float64
}

// DefaultPerfNoise models heartbeat-style performance feedback: noticeable
// jitter with occasional large excursions, which is why the paper filters.
func DefaultPerfNoise() NoiseSpec {
	return NoiseSpec{RelStdDev: 0.03, OutlierProb: 0.01, OutlierMag: 0.6}
}

// DefaultPowerNoise models an on-board power monitor.
func DefaultPowerNoise() NoiseSpec {
	return NoiseSpec{RelStdDev: 0.015, OutlierProb: 0.002, OutlierMag: 0.3}
}

// Tap intercepts a sensor's readings after noise is applied but before
// retention: it returns the (possibly transformed) value and whether the
// reading is delivered at all. Returning false models a dropout — the
// sample is lost and the window keeps only stale data. Fault-injection
// layers install taps to make sensors lie deterministically.
type Tap func(now time.Duration, v float64) (float64, bool)

// Sensor periodically samples a scalar source, perturbs it per its
// NoiseSpec, and retains readings in a Window. It implements sim.Ticker.
type Sensor struct {
	name   string
	source func() float64
	period time.Duration
	noise  NoiseSpec
	rng    *sim.RNG
	window *Window
	trace  *sim.Series // optional clean trace of noisy readings
	tap    Tap
}

// NewSensor builds a sensor named name sampling source every period. The
// window retains windowLen readings. rng must be a dedicated stream.
func NewSensor(name string, source func() float64, period time.Duration, windowLen int, noise NoiseSpec, rng *sim.RNG) *Sensor {
	return &Sensor{
		name:   name,
		source: source,
		period: period,
		noise:  noise,
		rng:    rng,
		window: NewWindow(windowLen),
	}
}

// SetTap installs (or, with nil, removes) a reading interceptor.
func (s *Sensor) SetTap(tap Tap) { s.tap = tap }

// Record attaches a series that receives every noisy reading, for tracing.
func (s *Sensor) Record(series *sim.Series) { s.trace = series }

// Trace returns the attached recording series, or nil when none is set.
func (s *Sensor) Trace() *sim.Series { return s.trace }

// Window exposes the sensor's sliding window.
func (s *Sensor) Window() *Window { return s.window }

// Period implements sim.Ticker.
func (s *Sensor) Period() time.Duration { return s.period }

// Tick implements sim.Ticker: sample, perturb, retain.
func (s *Sensor) Tick(now time.Duration) {
	v := s.source()
	if s.noise.RelStdDev > 0 {
		v *= 1 + s.noise.RelStdDev*s.rng.NormFloat64()
	}
	if s.noise.OutlierProb > 0 && s.rng.Float64() < s.noise.OutlierProb {
		sign := 1.0
		if s.rng.Float64() < 0.5 {
			sign = -1
		}
		v *= 1 + sign*s.noise.OutlierMag
	}
	if v < 0 {
		v = 0
	}
	if s.tap != nil {
		var ok bool
		v, ok = s.tap(now, v)
		if !ok {
			return // reading lost; the window retains only stale data
		}
		if v < 0 {
			v = 0
		}
	}
	s.window.Add(Reading{T: now, V: v})
	if s.trace != nil {
		s.trace.Add(now, v)
	}
}
