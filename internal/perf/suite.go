package perf

import (
	"context"
	"testing"
	"time"

	"pupil/internal/control"
	"pupil/internal/core"
	"pupil/internal/driver"
	"pupil/internal/machine"
	"pupil/internal/pipeline"
	"pupil/internal/server"
	"pupil/internal/sweep"
	"pupil/internal/workload"
)

// Benchmark is one suite entry: a canonical name (matching the go-test
// wrapper in bench_test.go) and its body.
type Benchmark struct {
	Name string
	Fn   func(*testing.B)
}

// Suite returns the hot-path benchmarks the regression gate tracks, in
// artifact order.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "BenchmarkRunnerTick", Fn: RunnerTick},
		{Name: "BenchmarkSessionAdvance", Fn: SessionAdvance},
		{Name: "BenchmarkSweepCell", Fn: SweepCell},
		{Name: "BenchmarkServerTick", Fn: ServerTick},
		{Name: "BenchmarkManagerRegistry", Fn: ManagerRegistry},
		{Name: "BenchmarkClusterEpoch", Fn: ClusterEpoch},
		{Name: "BenchmarkClusterEpoch100", Fn: ClusterEpoch100},
		{Name: "BenchmarkRouterPublish", Fn: RouterPublish},
	}
}

// tickScenario is the canonical hot-path workload: the hybrid controller
// (the most demanding decision loop) capping x264 on the dual-socket Xeon
// — the same machine and benchmark as the paper's Fig. 1.
func tickScenario() driver.Scenario {
	p := machine.E52690Server()
	prof, err := workload.ByName("x264")
	if err != nil {
		panic(err)
	}
	return driver.Scenario{
		Platform:   p,
		Specs:      []workload.Spec{{Profile: prof, Threads: 32}},
		CapWatts:   140,
		Controller: core.NewPUPiL(core.DefaultOrdered(p)),
		Seed:       42,
	}
}

// RunnerTick measures the steady-state simulation tick path: one op
// advances a live session by 100 ms of simulated time (100 kernel ticks,
// 10 sensor samples, 20 firmware sub-intervals, one controller decision).
// This is the loop every experiment, chaos run, and pupild node funnels
// through; its allocs/op is the number the hot-path overhaul drives down.
func RunnerTick(b *testing.B) {
	sess, err := driver.NewSession(tickScenario())
	if err != nil {
		b.Fatal(err)
	}
	// Run past the startup transient so ops measure steady state.
	sess.Advance(2 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Advance(100 * time.Millisecond)
	}
	b.ReportMetric(sess.Power(), "watts")
}

// SessionAdvance measures the full session lifecycle: one op builds a
// session (world assembly, telemetry wiring, firmware) and advances it one
// simulated second.
func SessionAdvance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess, err := driver.NewSession(tickScenario())
		if err != nil {
			b.Fatal(err)
		}
		sess.Advance(time.Second)
	}
}

// SweepCell measures the experiment engine's unit of work: one op runs a
// four-cell sweep (single worker, so timing is deterministic), each cell a
// one-second hardware-capped run with its own stable seed.
func SweepCell(b *testing.B) {
	prof, err := workload.ByName("blackscholes")
	if err != nil {
		b.Fatal(err)
	}
	caps := []float64{100, 120, 140, 160}
	cells := make([]sweep.Cell[float64], len(caps))
	for i, capW := range caps {
		capW := capW
		cells[i] = sweep.Cell[float64]{
			Label: "bench-cell",
			Run: func(ctx context.Context) (float64, error) {
				res, err := driver.RunContext(ctx, driver.Scenario{
					Platform:   machine.E52690Server(),
					Specs:      []workload.Spec{{Profile: prof, Threads: 32}},
					CapWatts:   capW,
					Controller: control.NewRAPLOnly(),
					Duration:   time.Second,
					Seed:       sweep.Seed("bench", "cell"),
				})
				if err != nil {
					return 0, err
				}
				return res.SteadyPower, nil
			},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(context.Background(), cells, sweep.Options{Parallel: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ServerTick measures one pupild session-manager tick: advancing a node by
// its simulated tick increment, snapshotting it, and publishing the sample
// to the fan-out.
func ServerTick(b *testing.B) {
	n, err := server.NewDetachedNode(server.NodeConfig{
		Technique: "RAPL",
		CapWatts:  130,
		Workloads: []server.WorkloadConfig{{Benchmark: "blackscholes", Threads: 32}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.StepOnce() {
			b.Fatal("node stopped during benchmark")
		}
	}
}

// ManagerRegistry measures the pupild control-plane read path under
// registry churn: one op is a Get + Status on a live manager holding 64
// idle nodes, with a full List every 16 ops and a Create/Delete pair every
// 256 ops, all racing across GOMAXPROCS goroutines. This is the lookup
// path every API request and every /metrics scrape funnels through; the op
// cost is dominated by how much work Status does under how wide a lock,
// which is exactly what the registry-contention fix narrows.
func ManagerRegistry(b *testing.B) {
	churnCfg := server.NodeConfig{
		Technique: "RAPL",
		CapWatts:  130,
		// Idle pacing: the tick loop parks on a ten-minute ticker, so ops
		// measure registry and status costs, not simulation work.
		TickRealMS: 600000,
		Workloads:  []server.WorkloadConfig{{Benchmark: "blackscholes", Threads: 8}},
	}
	mgr := server.NewManager()
	defer mgr.Close()
	const fleet = 64
	ids := make([]string, fleet)
	for i := range ids {
		n, err := mgr.Create(churnCfg)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = n.ID()
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			switch {
			case i%256 == 0:
				n, err := mgr.Create(churnCfg)
				if err != nil {
					b.Error(err)
					return
				}
				if err := mgr.Delete(n.ID()); err != nil {
					b.Error(err)
					return
				}
			case i%16 == 0:
				for _, n := range mgr.Nodes() {
					_ = n.Epoch()
				}
			default:
				n, ok := mgr.Get(ids[i%fleet])
				if !ok {
					b.Error("fleet node missing from registry")
					return
				}
				_ = n.Status()
			}
		}
	})
}

// ClusterEpoch measures one cluster-coordinator epoch through the serving
// layer: advancing four mixed-workload node sessions by one simulated second
// on the bounded worker pool, rebalancing the budget, applying the new caps,
// and snapshotting/publishing the epoch sample.
func ClusterEpoch(b *testing.B) {
	benchNode := func(name string, threads int) server.ClusterNodeConfig {
		return server.ClusterNodeConfig{
			Technique: "RAPL",
			Workloads: []server.WorkloadConfig{{Benchmark: name, Threads: threads}},
		}
	}
	c, err := server.NewDetachedCluster(server.ClusterConfig{
		BudgetWatts: 400,
		Policy:      "demand-shift",
		Seed:        42,
		Parallel:    2,
		Nodes: []server.ClusterNodeConfig{
			benchNode("blackscholes", 32),
			benchNode("swaptions", 32),
			benchNode("kmeans", 8),
			benchNode("STREAM", 8),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	// Step past the startup transient so ops measure the steady rebalance
	// loop, not first-epoch warm-up.
	for i := 0; i < 2; i++ {
		if !c.StepOnce() {
			b.Fatal("cluster stopped during warm-up")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.StepOnce() {
			b.Fatal("cluster stopped during benchmark")
		}
	}
}

// scaleCluster builds an n-node hierarchical cluster for the fleet-scale
// epoch benchmarks: nodes cycle through the four canonical benchmarks under
// hardware-only capping, grouped by topo into rack (and row) budget
// domains. Epochs advance 100 ms of simulated time — the ControlPULP-style
// split where node sessions and leaf rebalances run on a fast inner loop
// while parent domains reapportion on a slower cadence (every 5 epochs).
func scaleCluster(n int, topo *server.ClusterTopologyConfig) (*server.Cluster, error) {
	names := []string{"blackscholes", "swaptions", "kmeans", "STREAM"}
	threads := []int{32, 32, 8, 8}
	nodes := make([]server.ClusterNodeConfig, n)
	for i := range nodes {
		nodes[i] = server.ClusterNodeConfig{
			Technique: "RAPL",
			Workloads: []server.WorkloadConfig{{Benchmark: names[i%4], Threads: threads[i%4]}},
		}
	}
	return server.NewDetachedCluster(server.ClusterConfig{
		BudgetWatts: float64(n) * 100,
		Policy:      "demand-shift",
		Seed:        42,
		Parallel:    2,
		EpochSimMS:  100,
		Nodes:       nodes,
		Topology:    topo,
	})
}

// clusterEpochScale is the shared body of the fleet-scale variants: one op
// steps an n-node hierarchical cluster one coordinator epoch. The horizon
// is known (b.N epochs of 100 ms), so traces are pre-grown outside the
// timer — otherwise amortized trace doubling across hundreds of nodes makes
// allocs/op a function of b.N and the number useless for regression gating.
func clusterEpochScale(b *testing.B, n int, topo *server.ClusterTopologyConfig) {
	c, err := scaleCluster(n, topo)
	if err != nil {
		b.Fatal(err)
	}
	// Warm through several parent-rebalance cadences so first-occurrence
	// lazy growth (parent scratch, trace capacity, worker-pool scheduler
	// state) is outside the timer — short-benchtime runs would otherwise
	// read one alloc/op higher than long ones from the amortized remainder.
	for i := 0; i < 40; i++ {
		if !c.StepOnce() {
			b.Fatal("cluster stopped during warm-up")
		}
	}
	c.GrowTraces(time.Duration(b.N+1) * 100 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.StepOnce() {
			b.Fatal("cluster stopped during benchmark")
		}
	}
}

// ClusterEpoch100 measures a 100-node two-level cluster epoch (ten racks of
// ten under one datacenter budget) — the fleet-scale entry the regression
// gate tracks.
func ClusterEpoch100(b *testing.B) {
	clusterEpochScale(b, 100, &server.ClusterTopologyConfig{NodesPerRack: 10, RebalanceEvery: 5})
}

// ClusterEpoch1k measures a 1000-node three-level cluster epoch: 50 racks
// of 20 nodes, grouped 5 racks per row.
func ClusterEpoch1k(b *testing.B) {
	clusterEpochScale(b, 1000, &server.ClusterTopologyConfig{NodesPerRack: 20, RacksPerRow: 5, RebalanceEvery: 5})
}

// topo10k is the 10000-node arrangement the benchmark and the real-time
// acceptance test share: 200 racks of 50 nodes, 10 racks per row.
var topo10k = server.ClusterTopologyConfig{NodesPerRack: 50, RacksPerRow: 10, RebalanceEvery: 5}

// ClusterEpoch10k measures a 10000-node three-level cluster epoch — the
// scale target: one epoch must stay under a second of wall clock, so a
// fleet of ten thousand simulated nodes steps in real time under a single
// global budget.
func ClusterEpoch10k(b *testing.B) {
	clusterEpochScale(b, 10000, &topo10k)
}

// RouterPublish measures the telemetry pipeline's intake: one op pushes a
// node-tick-shaped sample through the router to an in-memory ring sink at
// the default queue/batch configuration. The op must sustain well over
// 100k samples/s with zero drops — a drop here means the backpressure
// path would be lossy for an ordinary single-node publisher, so the
// benchmark fails rather than reporting a misleading ns/op.
func RouterPublish(b *testing.B) {
	r := pipeline.NewRouter(pipeline.Config{})
	if err := r.AddSink("ring", pipeline.NewRing(4096)); err != nil {
		b.Fatal(err)
	}
	smp := pipeline.Sample{Family: "pupil_power_watts", Node: "bench", Zone: "package_0", SimS: 1, Value: 96.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.SimS += 0.25
		r.Publish(smp)
	}
	b.StopTimer()
	if err := r.Close(); err != nil {
		b.Fatal(err)
	}
	if dropped := r.Dropped(); dropped > 0 {
		b.Fatalf("router dropped %d of %d samples at default config", dropped, b.N)
	}
}
