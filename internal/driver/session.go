package driver

import (
	"context"
	"errors"
	"time"

	"pupil/internal/machine"
	"pupil/internal/sim"
	"pupil/internal/workload"
)

// Session is a resumable run: where Run executes a scenario to completion,
// a Session advances simulated time in increments and allows the node's
// power cap to change between increments — the primitive a cluster-level
// coordinator needs to shift budget between machines ("power capping: a
// prelude to power shifting").
type Session struct {
	scenario Scenario
	w        *world
	runner   *sim.Runner
	started  bool
}

// NewSession validates the scenario and builds the simulated node without
// advancing time. The scenario's Duration is ignored; callers advance
// explicitly.
func NewSession(s Scenario) (*Session, error) {
	if s.Platform == nil {
		return nil, errors.New("driver: session has no platform")
	}
	if err := s.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateCap(s.CapWatts); err != nil {
		return nil, err
	}
	if s.Controller == nil {
		return nil, errors.New("driver: session has no controller")
	}
	apps, err := workload.NewInstances(s.Specs)
	if err != nil {
		return nil, err
	}
	if len(apps) == 0 {
		return nil, errors.New("driver: session has no applications")
	}

	rng := sim.NewRNG(s.Seed)
	w := newWorld(s, apps, rng)
	runner := sim.NewRunner(w)
	w.clock = runner.Clock
	runner.Register(w.powerSensor)
	runner.Register(w.perfSensor)
	for _, sns := range w.appSensors {
		runner.Register(sns)
	}
	for _, fw := range w.firmwares {
		runner.Register(fw)
	}
	runner.Register(&controllerTicker{w: w, c: s.Controller})
	return &Session{scenario: s, w: w, runner: runner}, nil
}

// Now returns the session's simulated time.
func (s *Session) Now() time.Duration { return s.runner.Clock.Now() }

// Cap returns the node's current power cap.
func (s *Session) Cap() float64 { return s.w.capW }

// SetCap changes the node's power cap. The controller observes the new
// value through its environment on its next decision interval (controllers
// re-program hardware and, for large changes, re-explore).
func (s *Session) SetCap(watts float64) error {
	if err := ValidateCap(watts); err != nil {
		return err
	}
	s.w.capW = watts
	return nil
}

// Advance runs the node for d of simulated time.
func (s *Session) Advance(d time.Duration) {
	_ = s.AdvanceContext(context.Background(), d)
}

// AdvanceContext runs the node for d of simulated time, aborting between
// kernel ticks once ctx is cancelled and returning the context's error. The
// session remains valid after a cancelled advance: simulated time simply
// stops where the abort landed, and a later Advance resumes from there.
func (s *Session) AdvanceContext(ctx context.Context, d time.Duration) error {
	if !s.started {
		s.w.refresh(0)
		s.scenario.Controller.Start(s.w)
		s.started = true
	}
	return s.runner.RunContext(ctx, d)
}

// Power returns the node's current true power draw.
func (s *Session) Power() float64 {
	if s.w.evalStale {
		s.w.refresh(s.Now())
	}
	return s.w.eval.PowerTotal
}

// Rates returns the node's current per-application work rates.
func (s *Session) Rates() []float64 {
	if s.w.evalStale {
		s.w.refresh(s.Now())
	}
	return append([]float64(nil), s.w.eval.Rates...)
}

// MeanPower returns the node's mean true power over the trailing window.
func (s *Session) MeanPower(window time.Duration) float64 {
	from := s.Now() - window
	if from < 0 {
		from = 0
	}
	return s.w.truePower.MeanBetween(from, s.Now()+1)
}

// MeanRate returns the node's mean aggregate rate over the trailing window.
func (s *Session) MeanRate(window time.Duration) float64 {
	from := s.Now() - window
	if from < 0 {
		from = 0
	}
	total := 0.0
	for _, tr := range s.w.rateTrace {
		total += tr.MeanBetween(from, s.Now()+1)
	}
	return total
}

// Snapshot is an instantaneous, copyable view of a session — the
// introspection hook a serving layer reads between Advances without
// reaching into the simulated world.
type Snapshot struct {
	// Now is the session's simulated time.
	Now time.Duration
	// CapWatts is the cap currently being enforced.
	CapWatts float64
	// PowerWatts is the node's current true power draw.
	PowerWatts float64
	// Rates are the current per-application true work rates.
	Rates []float64
	// Config is the active hardware configuration (software configuration
	// merged with firmware-owned operating points).
	Config machine.Config
	// EnergyJ is total energy consumed so far.
	EnergyJ float64
	// Apps names the running applications, in launch order.
	Apps []string
}

// TotalRate sums the snapshot's per-application rates.
func (sn Snapshot) TotalRate() float64 {
	t := 0.0
	for _, r := range sn.Rates {
		t += r
	}
	return t
}

// Snapshot captures the session's current state.
func (s *Session) Snapshot() Snapshot {
	if s.w.evalStale {
		s.w.refresh(s.Now())
	}
	apps := make([]string, len(s.w.apps))
	for i, a := range s.w.apps {
		apps[i] = a.Profile.Name
	}
	return Snapshot{
		Now:        s.Now(),
		CapWatts:   s.w.capW,
		PowerWatts: s.w.eval.PowerTotal,
		Rates:      append([]float64(nil), s.w.eval.Rates...),
		Config:     s.w.active.Clone(),
		EnergyJ:    s.w.energyJ,
		Apps:       apps,
	}
}

// Result assembles metrics over everything simulated so far, as Run would.
func (s *Session) Result() Result {
	sc := s.scenario
	sc.Duration = s.Now()
	return s.w.result(sc)
}
