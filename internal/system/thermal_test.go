package system

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pupil/internal/machine"
)

func evalEqual(a, b Eval) bool {
	// Field-by-field with == on floats: the caching contract is
	// bit-identity, not tolerance.
	return reflect.DeepEqual(a, b)
}

// Cache-correctness property: a long-lived Evaluator fed a random walk of
// configurations and temperatures must stay bit-identical to a fresh
// one-shot evaluation at every step. This is the contract that makes
// temperature an explicit eval input rather than a silent cache poison —
// the config-keyed static cache must never capture stale temperature.
func TestEvaluatorCacheBitIdenticalAcrossTemperatureChanges(t *testing.T) {
	p := machine.E52690ThermalServer()
	as := apps(t, 24, "x264", "STREAM")
	cached := NewEvaluator(p, as)
	fresh := func(c machine.Config, now time.Duration, temps []float64) Eval {
		return EvaluateAt(p, c, as, now, temps)
	}

	rng := rand.New(rand.NewSource(2016))
	configs := []machine.Config{
		cfg(p, 8, 2, true, 2, 15),
		cfg(p, 8, 2, true, 2, 7),
		cfg(p, 4, 1, false, 1, 3),
		cfg(p, 6, 2, false, 2, 11),
	}
	temps := make([]float64, p.Sockets)
	for step := 0; step < 400; step++ {
		// Mostly hold the config (exercising the cache-hit path while
		// temperature moves), occasionally switch it.
		c := configs[0]
		if rng.Float64() < 0.15 {
			c = configs[rng.Intn(len(configs))]
		}
		for s := range temps {
			temps[s] = 25 + rng.Float64()*70
		}
		now := time.Duration(step) * 17 * time.Millisecond
		got := cached.EvalAt(c, now, temps).Clone()
		want := fresh(c, now, temps)
		if !evalEqual(got, want) {
			t.Fatalf("step %d: cached eval diverged from fresh\ncached: %+v\nfresh:  %+v", step, got, want)
		}
	}
}

// Temperatures inside the same quantization cell evaluate bit-identically;
// crossing a cell boundary with an active leakage model changes power.
func TestTemperatureQuantization(t *testing.T) {
	p := machine.E52690ThermalServer()
	as := apps(t, 24, "x264")
	c := cfg(p, 8, 2, true, 2, 12)
	e := NewEvaluator(p, as)

	a := e.EvalAt(c, 0, []float64{80.01, 80.01}).Clone()
	b := e.EvalAt(c, 0, []float64{80.11, 80.11}).Clone()
	if !evalEqual(a, b) {
		t.Fatalf("temperatures in the same %.2f C cell should be bit-identical", TempQuantC)
	}
	hot := e.EvalAt(c, 0, []float64{90, 90}).Clone()
	if hot.PowerTotal <= a.PowerTotal {
		t.Fatalf("hotter junction should draw more power: %v W at 90 C vs %v W at 80 C", hot.PowerTotal, a.PowerTotal)
	}

	if q := QuantizeTempC(80.01); q != 80.0 {
		t.Fatalf("QuantizeTempC(80.01) = %v", q)
	}
	if q := QuantizeTempC(80.2); q != 80.25 {
		t.Fatalf("QuantizeTempC(80.2) = %v", q)
	}
}

// With no leakage model (or unmodeled zero temperature) EvalAt must be
// bit-identical to plain Eval — temperature threading cannot disturb the
// reference platforms' goldens.
func TestEvalAtIdentityWithoutLeakage(t *testing.T) {
	p := plat() // E52690Server: Thermal set, Leakage nil
	as := apps(t, 32, "kmeans", "blackscholes")
	c := cfg(p, 8, 2, true, 2, 14)

	e1 := NewEvaluator(p, as)
	e2 := NewEvaluator(p, as)
	for step := 0; step < 50; step++ {
		now := time.Duration(step) * 11 * time.Millisecond
		plainEval := e1.Eval(c, now).Clone()
		tempEval := e2.EvalAt(c, now, []float64{60 + float64(step), 55}).Clone()
		// Loads carry the temperature through for observability, but every
		// model output must match exactly.
		tempEval.Loads = plainEval.Loads
		if !evalEqual(plainEval, tempEval) {
			t.Fatalf("step %d: EvalAt with temps diverged on a leakage-free platform", step)
		}
	}
}
