package pupil

// The benchmark harness regenerates each table and figure of the paper's
// evaluation (one benchmark per artifact) and measures the reproduction
// cost. Results shared between artifacts (the single- and multi-application
// sweeps) are memoized per configuration, so the first benchmark touching a
// sweep pays for it and the rest measure rendering on top of it — run a
// single benchmark in isolation to time a sweep end to end.
//
// By default the reduced grid runs (3 caps, 8 benchmarks, half-length
// runs). Set PUPIL_BENCH_FULL=1 for the paper's full grid (5 caps, 20
// benchmarks); the full single-application sweep simulates ~8 hours of
// machine time and takes on the order of tens of seconds.
//
// The key reproduced quantities are attached to each benchmark via
// b.ReportMetric, so `go test -bench .` doubles as a compact results
// summary.

import (
	"os"
	"testing"
	"time"

	"pupil/internal/cluster"
	"pupil/internal/control"
	"pupil/internal/core"
	"pupil/internal/driver"
	"pupil/internal/experiment"
	"pupil/internal/machine"
	"pupil/internal/metrics"
	"pupil/internal/resource"
	"pupil/internal/system"
	"pupil/internal/telemetry"
	"pupil/internal/workload"
)

func benchConfig() experiment.Config {
	return experiment.Config{Seed: 42, Quick: os.Getenv("PUPIL_BENCH_FULL") == ""}
}

// BenchmarkTable2Calibration regenerates Table 2: the Algorithm 2 resource
// ordering with per-resource speedup and powerup.
func BenchmarkTable2Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		impacts, _, err := experiment.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(impacts[0].Speedup, "cores-speedup")
		b.ReportMetric(impacts[len(impacts)-1].Speedup, "dvfs-speedup")
	}
}

// BenchmarkFig1Motivational regenerates Fig. 1: the x264 power/performance
// traces for hardware, software and hybrid capping at 140 W.
func BenchmarkFig1Motivational(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SteadyPerf[experiment.TechPUPiL]/res.SteadyPerf[experiment.TechRAPL],
			"pupil/rapl-perf")
		b.ReportMetric(float64(res.Settling[experiment.TechRAPL])/1e6, "rapl-settle-ms")
	}
}

// BenchmarkTable3HarmonicMean regenerates Table 3: harmonic-mean
// performance normalized to optimal for every technique and cap.
func BenchmarkTable3HarmonicMean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiment.SingleAppSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var rapl, pupil []float64
		for _, app := range d.Apps {
			rapl = append(rapl, d.Normalized(experiment.TechRAPL, 140, app))
			pupil = append(pupil, d.Normalized(experiment.TechPUPiL, 140, app))
		}
		b.ReportMetric(metrics.HarmonicMean(rapl), "rapl@140W")
		b.ReportMetric(metrics.HarmonicMean(pupil), "pupil@140W")
	}
}

// BenchmarkFig3PerApp regenerates Fig. 3: per-application normalized
// performance under each cap.
func BenchmarkFig3PerApp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tables)), "caps")
	}
}

// BenchmarkFig4Settling regenerates Fig. 4: settling times at the 140 W
// cap.
func BenchmarkFig4Settling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		avg, err := experiment.Fig4Averages(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avg[experiment.TechRAPL], "rapl-ms")
		b.ReportMetric(avg[experiment.TechPUPiL], "pupil-ms")
		b.ReportMetric(avg[experiment.TechSoftDVFS], "softdvfs-ms")
		b.ReportMetric(avg[experiment.TechSoftDecision], "softdecision-ms")
	}
}

// BenchmarkFig5Characteristics regenerates Fig. 5: the GIPS-vs-bandwidth
// characterization and the RAPL near-optimal classification.
func BenchmarkFig5Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiment.Fig5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		poor := 0
		for _, r := range rows {
			if !r.RAPLNearOptimal {
				poor++
			}
		}
		b.ReportMetric(float64(poor), "rapl-poor-apps")
	}
}

// BenchmarkTable5Fig6MultiApp regenerates Table 5 and Fig. 6: the
// PUPiL-to-RAPL weighted-speedup ratios for cooperative and oblivious
// multi-application workloads.
func BenchmarkTable5Fig6MultiApp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		means, err := experiment.Table5Means(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(means[experiment.ScenarioCooperative][140], "coop@140W")
		b.ReportMetric(means[experiment.ScenarioOblivious][140], "obliv@140W")
	}
}

// BenchmarkTable6SpinBandwidth regenerates Table 6: spin cycles and
// achieved bandwidth for the mixes where PUPiL's advantage is largest.
func BenchmarkTable6SpinBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiment.MultiAppSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		rec := d.Records[experiment.ScenarioOblivious][experiment.TechRAPL][140]["mix8"]
		b.ReportMetric(rec.Eval.SpinFrac*100, "rapl-mix8-spin%")
	}
}

// BenchmarkFig7EnergyEfficiency regenerates Fig. 7: single-application
// energy efficiency normalized to optimal.
func BenchmarkFig7EnergyEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiment.SingleAppSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var pupil []float64
		for _, app := range d.Apps {
			pupil = append(pupil, d.NormalizedEfficiency(experiment.TechPUPiL, 140, app))
		}
		b.ReportMetric(metrics.HarmonicMean(pupil), "pupil-eff@140W")
	}
}

// BenchmarkFig8MultiAppEfficiency regenerates Fig. 8: the PUPiL-to-RAPL
// energy-efficiency ratios for both multi-application scenarios.
func BenchmarkFig8MultiAppEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiment.MultiAppSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var ratios []float64
		for _, mix := range d.Mixes {
			ratios = append(ratios, d.EfficiencyRatio(experiment.ScenarioOblivious, 140, mix))
		}
		b.ReportMetric(metrics.HarmonicMean(ratios), "obliv-eff-ratio@140W")
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

func ablationScenario(ctrl core.Controller, names []string, threads int, capW float64, raw bool) driver.Scenario {
	p := machine.E52690Server()
	var specs []workload.Spec
	for _, n := range names {
		prof, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		specs = append(specs, workload.Spec{Profile: prof, Threads: threads})
	}
	return driver.Scenario{
		Platform: p, Specs: specs, CapWatts: capW, Controller: ctrl,
		Duration: 60 * time.Second, Seed: 9, RawFeedback: raw,
	}
}

// BenchmarkAblationPowerDistribution compares PUPiL's core-proportional
// per-socket cap distribution (Section 3.3.2) against a naive even split on
// a workload whose best configuration is asymmetric (kmeans on one socket).
func BenchmarkAblationPowerDistribution(b *testing.B) {
	p := machine.E52690Server()
	for i := 0; i < b.N; i++ {
		run := func(even bool) float64 {
			w := core.NewWalker("PUPiL-ablate", 100*time.Millisecond, core.WalkerOptions{
				Resources:       resource.NonDVFS(p),
				UseRAPL:         true,
				MeasureWindow:   2500 * time.Millisecond,
				RewalkThreshold: 0.35,
				EvenSplit:       even,
			})
			res, err := driver.Run(ablationScenario(w, []string{"kmeans"}, 32, 100, false))
			if err != nil {
				b.Fatal(err)
			}
			return res.SteadyTotal()
		}
		proportional, even := run(false), run(true)
		b.ReportMetric(proportional, "proportional-perf")
		b.ReportMetric(even, "evensplit-perf")
		b.ReportMetric(proportional/even, "gain")
	}
}

// BenchmarkAblationBinarySearch compares the per-resource binary search of
// Algorithm 1 against a naive linear descent, measuring the time the
// software-only walk needs to enforce the cap (Section 3.1.2's engineering
// tradeoff).
func BenchmarkAblationBinarySearch(b *testing.B) {
	p := machine.E52690Server()
	for i := 0; i < b.N; i++ {
		run := func(linear bool) time.Duration {
			w := core.NewWalker("SD-ablate", 200*time.Millisecond, core.WalkerOptions{
				Resources:     core.DefaultOrdered(p),
				CheckPower:    true,
				MeasureWindow: 4 * time.Second,
				LinearSearch:  linear,
			})
			// A tight cap puts the compliant settings far from the top
			// of each resource's range, where search strategy matters.
			res, err := driver.Run(ablationScenario(w, []string{"x264"}, 32, 70, false))
			if err != nil {
				b.Fatal(err)
			}
			if !res.Settled {
				return 60 * time.Second
			}
			return res.Settling
		}
		binary, linear := run(false), run(true)
		b.ReportMetric(float64(binary)/1e9, "binary-settle-s")
		b.ReportMetric(float64(linear)/1e9, "linear-settle-s")
	}
}

// BenchmarkAblationSigmaFilter compares the 3-sigma feedback filter of
// Section 3.1.1 against raw window means, counting how often the
// software-only walker is misled into a different final configuration.
func BenchmarkAblationSigmaFilter(b *testing.B) {
	p := machine.E52690Server()
	for i := 0; i < b.N; i++ {
		run := func(raw bool, seed uint64) float64 {
			w := core.NewSoftDecision(core.DefaultOrdered(p))
			sc := ablationScenario(w, []string{"bodytrack"}, 32, 140, raw)
			sc.Seed = seed
			// Heartbeat feedback with heavy outliers (timing glitches,
			// page faults landing inside measurement windows) — the
			// regime Section 3.1.1's filter is built for.
			sc.PerfNoise = &telemetry.NoiseSpec{RelStdDev: 0.05, OutlierProb: 0.15, OutlierMag: 5.0}
			res, err := driver.Run(sc)
			if err != nil {
				b.Fatal(err)
			}
			return res.SteadyTotal()
		}
		// Misdecisions under raw feedback are seed-dependent; average a
		// few runs of each.
		var filtered, raw float64
		const seeds = 4
		for s := uint64(9); s < 9+seeds; s++ {
			filtered += run(false, s) / seeds
			raw += run(true, s) / seeds
		}
		b.ReportMetric(filtered, "filtered-perf")
		b.ReportMetric(raw, "raw-perf")
	}
}

// BenchmarkAblationResourceOrder compares the calibrated walk order against
// the worst-case reversed order (memctl first, cores last), measuring the
// converged performance of the software-only walk.
func BenchmarkAblationResourceOrder(b *testing.B) {
	p := machine.E52690Server()
	reversed := func() []resource.Resource {
		ordered := core.DefaultOrdered(p)
		nonDVFS := ordered[:len(ordered)-1]
		out := make([]resource.Resource, 0, len(ordered))
		for i := len(nonDVFS) - 1; i >= 0; i-- {
			out = append(out, nonDVFS[i])
		}
		return append(out, ordered[len(ordered)-1]) // DVFS stays last
	}
	for i := 0; i < b.N; i++ {
		run := func(rs []resource.Resource) float64 {
			w := core.NewWalker("SD-order", 200*time.Millisecond, core.WalkerOptions{
				Resources:     rs,
				CheckPower:    true,
				MeasureWindow: 4 * time.Second,
			})
			res, err := driver.Run(ablationScenario(w, []string{"blackscholes"}, 32, 60, false))
			if err != nil {
				b.Fatal(err)
			}
			return res.SteadyTotal()
		}
		calibrated, rev := run(core.DefaultOrdered(p)), run(reversed())
		b.ReportMetric(calibrated, "calibrated-perf")
		b.ReportMetric(rev, "reversed-perf")
	}
}

// BenchmarkEvaluate measures the ground-truth evaluator itself — the hot
// path of the whole simulation.
func BenchmarkEvaluate(b *testing.B) {
	p := machine.E52690Server()
	mix, err := workload.MixByName("mix8")
	if err != nil {
		b.Fatal(err)
	}
	profs, err := mix.Profiles()
	if err != nil {
		b.Fatal(err)
	}
	apps, err := workload.NewInstances(workload.Specs(profs, 32))
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.MaxConfig(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalSink = system.Evaluate(p, cfg, apps, 0).TotalRate()
	}
}

var evalSink float64

// BenchmarkExtensionEAS measures the paper's future-work extension: PUPiL
// coupled with per-application affinity tuning (an energy-aware-scheduler
// stand-in) against plain PUPiL on an oblivious mix whose global walk keeps
// both sockets — the case where only per-app pinning can isolate the
// pathological workload.
func BenchmarkExtensionEAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(ctrl core.Controller) float64 {
			sc := ablationScenario(ctrl, []string{"btree", "particlefilter", "kmeans", "STREAM"},
				32, 220, false)
			sc.Duration = 90 * time.Second
			sc.Seed = 7
			res, err := driver.Run(sc)
			if err != nil {
				b.Fatal(err)
			}
			return res.SteadyTotal()
		}
		p := machine.E52690Server()
		pupilPerf := run(core.NewPUPiL(core.DefaultOrdered(p)))
		easPerf := run(core.NewPUPiLEAS(core.DefaultOrdered(p)))
		b.ReportMetric(pupilPerf, "pupil-perf")
		b.ReportMetric(easPerf, "eas-perf")
		b.ReportMetric(easPerf/pupilPerf, "gain")
	}
}

// BenchmarkExtensionCluster measures cluster-level power shifting: four
// PUPiL nodes under a 400 W global budget, comparing a static even split
// against the demand-shift policy, plus the same cluster with RAPL-only
// node cappers (the paper's node-level advantage compounds cluster-wide).
func BenchmarkExtensionCluster(b *testing.B) {
	mk := func(tech string) []cluster.NodeSpec {
		node := func(name, bench string, threads int) cluster.NodeSpec {
			prof, err := workload.ByName(bench)
			if err != nil {
				b.Fatal(err)
			}
			return cluster.NodeSpec{
				Name:     name,
				Platform: machine.E52690Server(),
				Specs:    []workload.Spec{{Profile: prof, Threads: threads}},
				NewController: func(p *machine.Platform) core.Controller {
					if tech == "PUPiL" {
						return core.NewPUPiL(core.DefaultOrdered(p))
					}
					return control.NewRAPLOnly()
				},
			}
		}
		return []cluster.NodeSpec{
			node("compute-1", "blackscholes", 32),
			node("compute-2", "swaptions", 32),
			node("light-1", "kmeans", 8),
			node("light-2", "STREAM", 8),
		}
	}
	run := func(tech string, p cluster.Policy) float64 {
		res, err := cluster.Run(cluster.Config{
			Nodes: mk(tech), BudgetWatts: 400,
			Epoch: 5 * time.Second, Duration: 90 * time.Second,
			Policy: p, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.TotalRate
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run("PUPiL", cluster.EvenPolicy{}), "pupil-even")
		b.ReportMetric(run("PUPiL", cluster.DemandShiftPolicy{}), "pupil-shift")
		b.ReportMetric(run("RAPL", cluster.DemandShiftPolicy{}), "rapl-shift")
	}
}
