package server

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pupil/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestMetricsGoldenEmpty pins the full /metrics page of an empty server
// byte for byte: every family header renders (in the pre-pipeline order,
// with the new zone, stream-drop, and pipeline families in place), the
// server-level gauges read zero, and the content type is the exposition
// format. Regenerate with -update.
func TestMetricsGoldenEmpty(t *testing.T) {
	mgr := NewManager()
	defer mgr.Close()
	ts := httptest.NewServer(New(mgr).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != pipeline.ContentType {
		t.Errorf("Content-Type = %q, want %q", got, pipeline.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	path := filepath.Join("testdata", "metrics_empty.golden")
	if *update {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if body != string(want) {
		t.Errorf("/metrics drifted from golden:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestMetricsZoneFamilies runs a live node and checks the machine model's
// zone breakdown reaches the exporter: pupil_power_watts gains
// node+zone series for each package/core/dram zone, and the RAPL cap
// appears as pupil_zone_cap_watts.
func TestMetricsZoneFamilies(t *testing.T) {
	mgr, ts := testClient(t)

	n, err := mgr.Create(NodeConfig{Name: "z1", Technique: "RAPL", CapWatts: 140, FreeRun: true, Seed: 5,
		Workloads: []WorkloadConfig{{Benchmark: "blackscholes", Threads: 32}}})
	if err != nil {
		t.Fatal(err)
	}
	id := n.ID()

	deadline := time.Now().Add(10 * time.Second)
	var body string
	wanted := []string{
		`pupil_power_watts{node="` + id + `",zone="package_0"} `,
		`pupil_power_watts{node="` + id + `",zone="package_0_core"} `,
		`pupil_power_watts{node="` + id + `",zone="package_0_dram"} `,
		`pupil_power_watts{node="` + id + `",zone="package_1"} `,
		`pupil_zone_cap_watts{node="` + id + `",zone="package_0"} `,
		"# TYPE pupil_zone_cap_watts gauge",
		"# TYPE pupil_stream_dropped_total counter",
		"# TYPE pupil_pipeline_published_total counter",
		`pupil_pipeline_written_total{sink="recent"} `,
	}
	for time.Now().Before(deadline) {
		body = scrape(t, ts.URL)
		ok := true
		for _, w := range wanted {
			if !strings.Contains(body, w) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, w := range wanted {
		if !strings.Contains(body, w) {
			t.Errorf("/metrics missing %q", w)
		}
	}
	t.Fatalf("zone families never appeared; last scrape:\n%s", body)
}

// TestRecentEndpoint checks the ring sink behind /v1/telemetry/recent
// accumulates the node's per-tick samples and honors ?max.
func TestRecentEndpoint(t *testing.T) {
	mgr, ts := testClient(t)
	if _, err := mgr.Create(NodeConfig{Name: "r1", Technique: "RAPL", CapWatts: 120, FreeRun: true, Seed: 2,
		Workloads: []WorkloadConfig{{Benchmark: "STREAM", Threads: 8}}}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(mgr.Recent(0)) > 10 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	all := mgr.Recent(0)
	if len(all) <= 10 {
		t.Fatalf("recent ring stuck at %d samples", len(all))
	}
	families := map[string]bool{}
	for _, s := range all {
		families[s.Family] = true
		if s.Node == "" {
			t.Fatalf("recent sample missing node label: %+v", s)
		}
	}
	for _, want := range []string{"pupil_power_watts", "pupil_cap_watts", "pupil_perf_hbs"} {
		if !families[want] {
			t.Errorf("recent samples missing family %q (have %v)", want, families)
		}
	}

	resp, got := doJSON(t, "GET", ts.URL+"/v1/telemetry/recent?max=3", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recent: status %d body %v", resp.StatusCode, got)
	}
	samples, ok := got["samples"].([]any)
	if !ok || len(samples) != 3 {
		t.Fatalf("recent?max=3 returned %v", got["samples"])
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/telemetry/recent?max=bogus", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad max: status %d, want 400", resp.StatusCode)
	}
}

// TestStreamDroppedExported wedges a buffer-1 subscriber and checks the
// lost samples surface in the node status and the exporter.
func TestStreamDroppedExported(t *testing.T) {
	mgr, ts := testClient(t)
	n, err := mgr.Create(NodeConfig{Name: "d1", Technique: "RAPL", CapWatts: 120, FreeRun: true, Seed: 4,
		Workloads: []WorkloadConfig{{Benchmark: "x264", Threads: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	sub := n.Subscribe(1) // never read: every tick past the first overflows
	defer sub.Cancel()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && n.StreamDropped() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if n.StreamDropped() == 0 {
		t.Fatal("wedged subscriber produced no drops")
	}
	if st := n.Status(); st.StreamDropped == 0 {
		t.Error("NodeStatus.StreamDropped = 0 after drops")
	}
	body := scrape(t, ts.URL)
	prefix := `pupil_stream_dropped_total{node="` + n.ID() + `"} `
	idx := strings.Index(body, prefix)
	if idx < 0 {
		t.Fatalf("/metrics missing %q:\n%s", prefix, body)
	}
	rest := body[idx+len(prefix):]
	if strings.HasPrefix(rest, "0\n") {
		t.Error("exporter reports zero stream drops after a wedged subscriber")
	}
}
