// Package sweep provides a deterministic concurrent grid runner: the
// execution engine behind the experiment layer's parameter sweeps (the
// 20-benchmark x 5-cap x 5-technique grid of Table 3, the 12-mix
// multi-application grid of Tables 5-6, and the sensitivity and extension
// studies).
//
// A sweep is a flat slice of independent Cells. Each cell is a closed-over
// unit of work — one simulation, one oracle search — that derives all of its
// randomness from a stable per-cell seed (see Seed), never from scheduling.
// The engine runs cells on a bounded worker pool and collects results into a
// slice indexed exactly like the input, so the assembled output is identical
// regardless of worker count or interleaving: determinism is a property of
// the cells, ordering is a property of the engine, and together they make a
// parallel sweep byte-for-byte reproducible.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell is one independent unit of a grid: a deterministic function of its
// inputs and the context it is given. Run must not depend on shared mutable
// state or on the order cells execute in.
type Cell[T any] struct {
	// Label names the cell in progress reports and error messages,
	// e.g. "RAPL/x264/140W".
	Label string
	// Run computes the cell. It should honour ctx cancellation promptly
	// (long simulations receive it through driver.RunContext).
	Run func(ctx context.Context) (T, error)
}

// Progress observes cell completions. done counts finished cells (including
// failed ones), total is the grid size, and label names the cell that just
// finished. The engine serializes calls, so implementations need no locking.
type Progress func(done, total int, label string)

// Options tunes how a sweep executes. Options never affect results — only
// wall-clock time and observability.
type Options struct {
	// Parallel bounds the worker pool. Values <= 0 mean GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, is called after every cell completes.
	Progress Progress
}

// Workers resolves a requested parallelism to an effective worker count:
// the request itself when positive, otherwise GOMAXPROCS.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every cell on a bounded worker pool and returns the results
// in cell order. The first cell failure cancels the context handed to the
// remaining cells (fail-fast) and unstarted cells are skipped; all errors
// that did occur are aggregated in cell order, each annotated with its
// cell's label. When the parent context is cancelled, Run drains promptly
// and returns the context's error.
func Run[T any](ctx context.Context, cells []Cell[T], opts Options) ([]T, error) {
	results := make([]T, len(cells))
	if len(cells) == 0 {
		return results, ctx.Err()
	}
	workers := Workers(opts.Parallel)
	if workers > len(cells) {
		workers = len(cells)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, len(cells))
	var (
		next int64 = -1 // next cell index, claimed atomically
		done int64
		mu   sync.Mutex // serializes Progress callbacks
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(cells) || runCtx.Err() != nil {
					return
				}
				c := cells[i]
				v, err := c.Run(runCtx)
				if err != nil {
					if c.Label != "" {
						err = fmt.Errorf("%s: %w", c.Label, err)
					}
					errs[i] = err
					cancel()
				} else {
					results[i] = v
				}
				d := int(atomic.AddInt64(&done, 1))
				if opts.Progress != nil {
					mu.Lock()
					opts.Progress(d, len(cells), c.Label)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	var failures []error
	for _, e := range errs {
		if e != nil {
			failures = append(failures, e)
		}
	}
	if len(failures) > 0 {
		return results, errors.Join(failures...)
	}
	// No cell failed but the parent was cancelled: surface that, since an
	// arbitrary suffix of the grid may have been skipped.
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// Seed derives a stable per-cell seed salt from the cell's coordinate
// labels (FNV-1a over the labels with a separator, so {"a","bc"} and
// {"ab","c"} hash differently). Equal labels always produce equal seeds —
// the per-cell randomness that keeps a sweep independent of scheduling.
func Seed(labels ...string) uint64 {
	h := uint64(14695981039346656037)
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= 1099511628211
		}
		h ^= '/'
		h *= 1099511628211
	}
	return h
}
