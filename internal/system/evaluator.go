package system

import (
	"math"
	"time"

	"pupil/internal/machine"
	"pupil/internal/sched"
	"pupil/internal/workload"
)

// Evaluator computes Evals for a fixed platform and application set,
// caching every configuration-invariant term of the model and reusing all
// result and scratch buffers across calls. It exists for the simulation's
// tick loop, which re-evaluates the same configuration every sensor period:
// only the workload phases change between refreshes, so the placement,
// spin, speedup and bandwidth-capability terms can be computed once per
// configuration instead of once per refresh.
//
// The cache is keyed on the last configuration passed to Eval (compared by
// value, so in-place operating-point mutation by the caller is detected)
// and must be invalidated explicitly with Invalidate whenever the
// application set itself changes behaviour — a profile shift or an affinity
// change. The arithmetic is ordered exactly as Evaluate's, so a cached
// evaluation is bit-identical to a fresh one.
//
// The slices in a returned Eval alias the evaluator's internal buffers and
// are overwritten by the next Eval call; callers that retain a result
// across calls must Clone it. An Evaluator is not safe for concurrent use.
type Evaluator struct {
	plat *machine.Platform
	apps []*workload.Instance

	// Cache key: a private copy of the raw configuration the static terms
	// were computed for (copied into owned slices because callers mutate
	// configs in place).
	valid   bool
	key     machine.Config
	keyFreq []int
	keyDuty []float64

	// Static terms, recomputed only on a key miss or Invalidate.
	cfg        machine.Config // normalized form of key, in owned storage
	cfgFreq    []int
	cfgDuty    []float64
	totalCores int
	fGHz, fRel float64
	placer     sched.Placer
	pl         sched.Placement
	capacity   []float64
	spins      []sched.SpinState
	appSpan    []bool
	steal      float64
	stealApp   []float64
	availBW    float64
	capable    []float64 // per-core-bandwidth capability per app
	compBase   []float64 // compute rate before the workload phase factor
	busyCores  float64
	stallDen   float64
	htShare    float64

	// Reused result buffers (aliased by returned Evals).
	rates       []float64
	perAppSpin  []float64
	perAppBW    []float64
	powerSocket []float64

	// Reused per-call scratch.
	compute []float64
	demand  []float64
	bwCap   []float64
	allocBW []float64
	sat     []bool
	loads   []machine.SocketLoad

	// tempQ holds the quantized per-socket junction temperatures the next
	// evaluation runs at — an explicit eval input, not part of the config
	// cache key. Temperature feeds only the dynamic (per-call) half of the
	// model, so the static terms stay valid across temperature changes.
	tempQ []float64
}

// NewEvaluator returns an evaluator over a fixed platform and app set.
func NewEvaluator(p *machine.Platform, apps []*workload.Instance) *Evaluator {
	n := len(apps)
	return &Evaluator{
		plat:        p,
		apps:        apps,
		cfgFreq:     make([]int, p.Sockets),
		cfgDuty:     make([]float64, p.Sockets),
		capacity:    make([]float64, n),
		spins:       make([]sched.SpinState, n),
		appSpan:     make([]bool, n),
		stealApp:    make([]float64, n),
		capable:     make([]float64, n),
		compBase:    make([]float64, n),
		rates:       make([]float64, n),
		perAppSpin:  make([]float64, n),
		perAppBW:    make([]float64, n),
		powerSocket: make([]float64, p.Sockets),
		compute:     make([]float64, n),
		demand:      make([]float64, n),
		bwCap:       make([]float64, n),
		allocBW:     make([]float64, n),
		sat:         make([]bool, n),
		loads:       make([]machine.SocketLoad, p.Sockets),
		tempQ:       make([]float64, p.Sockets),
	}
}

// Invalidate drops the cached static terms. Callers must invoke it whenever
// an application's behaviour changes outside a configuration change — a
// profile shift or an affinity-limit update — since those feed the cached
// placement and speedup terms.
func (e *Evaluator) Invalidate() { e.valid = false }

// Eval evaluates cfg at simulated time now, rebuilding the static model
// terms only when cfg differs from the previous call's configuration.
// Junction temperatures are taken as unmodeled (zero); platforms with a
// leakage model should use EvalAt.
func (e *Evaluator) Eval(cfg machine.Config, now time.Duration) Eval {
	return e.EvalAt(cfg, now, nil)
}

// EvalAt is Eval with per-socket junction temperatures as an explicit
// input. Temperatures are quantized to TempQuantC before use — two calls
// whose temperatures land on the same grid points are bit-identical —
// and feed only the per-call dynamic half of the model, so temperature
// changes never invalidate the configuration-keyed static cache. A nil or
// short slice leaves the missing sockets unmodeled (zero).
func (e *Evaluator) EvalAt(cfg machine.Config, now time.Duration, tempsC []float64) Eval {
	for s := range e.tempQ {
		if s < len(tempsC) {
			e.tempQ[s] = QuantizeTempC(tempsC[s])
		} else {
			e.tempQ[s] = 0
		}
	}
	if !e.valid || !cfg.Equal(e.key) {
		e.rebuild(cfg)
	}
	return e.dynamic(now)
}

// rebuild recomputes every configuration-invariant term, in the exact
// arithmetic order Evaluate uses.
func (e *Evaluator) rebuild(raw machine.Config) {
	e.keyFreq = append(e.keyFreq[:0], raw.Freq...)
	e.keyDuty = append(e.keyDuty[:0], raw.Duty...)
	e.key = raw
	e.key.Freq = e.keyFreq
	e.key.Duty = e.keyDuty
	e.valid = true
	cfg := raw.NormalizeInto(e.plat, e.cfgFreq, e.cfgDuty)
	e.cfg = cfg
	p := e.plat
	apps := e.apps
	n := len(apps)

	e.totalCores = cfg.TotalCores()
	hwThreads := cfg.HWThreads()
	spanning := cfg.Sockets > 1
	e.fGHz = cfg.MeanGHz(p)
	e.fRel = e.fGHz / p.BaseGHz()

	if n == 0 {
		return
	}

	e.pl = e.placer.Place(apps, e.totalCores, hwThreads)
	pl := e.pl

	// Per-app effective parallelism and spin behaviour (see Evaluate).
	for i, a := range apps {
		cores := pl.CoreAlloc[i]
		e.appSpan[i] = spanning
		if a.AffinityCores > 0 && a.AffinityCores <= cfg.Cores {
			e.appSpan[i] = false
		}
		htFactor := 1.0
		if cfg.HT && cores > 0 && float64(a.Threads) > cores {
			engage := math.Min(1, (float64(a.Threads)-cores)/cores)
			htFactor = 1 + a.Profile.HTYield*engage
			if htFactor < 0.1 {
				htFactor = 0.1
			}
		}
		e.capacity[i] = cores * htFactor
		nEff := math.Min(float64(a.Threads), e.capacity[i])
		parEff := 1.0
		if nEff > 1 {
			parEff = a.Profile.Speedup(nEff, e.appSpan[i]) / nEff
		}
		e.spins[i] = sched.Spin(a.Profile, parEff, pl.Oversub, e.fRel, e.appSpan[i])
		e.perAppSpin[i] = e.spins[i].Frac
	}

	steal := sched.SpinStealInto(e.stealApp, e.spins, pl.CoreAlloc, float64(e.totalCores), apps)
	stealPerApp := e.stealApp
	e.steal = steal
	stealGate := clamp01(pl.Oversub - 1)

	// Compute-side rate per app, up to but excluding the phase factor —
	// the only time-dependent term. The multiplication order matches
	// Evaluate's left-associated chain exactly, with PhaseFactor applied
	// last in dynamic(), so the product is bit-identical.
	for i, a := range apps {
		e.compBase[i] = 0
		usefulScale := 1 - (steal-stealPerApp[i])*stealGate*sched.SpinVictimCost
		if usefulScale < 0.1 {
			usefulScale = 0.1
		}
		nEff := math.Min(float64(a.Threads), e.capacity[i])
		if nEff <= 0 {
			continue
		}
		speedup := a.Profile.Speedup(nEff, e.appSpan[i])
		e.compBase[i] = a.Profile.BaseRate * e.fRel * speedup * usefulScale *
			pl.OversubFactor * e.spins[i].RateMult
	}

	availBW := p.TotalBWGBs(cfg.MemCtls)
	availBW *= 1 - math.Min(0.5, steal*sched.SpinBWPollution)
	e.availBW = availBW
	perCoreBW := p.PerCoreBWGBs * (memFreqFloor + (1-memFreqFloor)*e.fRel)
	for i, a := range apps {
		capable := pl.CoreAlloc[i] * perCoreBW
		if cfg.HT {
			capable *= 1 - htBWPenalty*a.Profile.MemIntensity
		}
		e.capable[i] = capable
	}

	// The power model's load terms that do not depend on achieved
	// bandwidth: busy cores and the stall denominator.
	busyCores := 0.0
	stallDen := 0.0
	for i := range apps {
		cores := pl.CoreAlloc[i]
		if cores <= 0 {
			continue
		}
		busyCores += cores
		stallDen += cores
	}
	e.busyCores = math.Min(busyCores, float64(e.totalCores))
	e.stallDen = stallDen

	e.htShare = 0
	if cfg.HT && e.totalCores > 0 {
		e.htShare = clamp01(float64(pl.TotalThreads)/float64(e.totalCores) - 1)
	}
}

// dynamic computes the time-dependent half of the model over the cached
// static terms: workload phases, bandwidth sharing, rate blending, and
// power.
func (e *Evaluator) dynamic(now time.Duration) Eval {
	p := e.plat
	cfg := e.cfg
	apps := e.apps
	n := len(apps)
	ev := Eval{
		Rates:      e.rates,
		PerAppSpin: e.perAppSpin,
		PerAppBW:   e.perAppBW,
		Loads:      e.loads,
	}
	if n == 0 {
		for s := range e.loads {
			e.loads[s] = machine.SocketLoad{TempC: e.tempQ[s]}
		}
		ev.PowerTotal = p.PowerInto(e.powerSocket, cfg, e.loads)
		ev.PowerSocket = e.powerSocket
		return ev
	}
	ev.SpinFrac = e.steal

	for i, a := range apps {
		e.compute[i] = e.compBase[i] * a.Profile.PhaseFactor(now)
		e.demand[i] = e.compute[i] * a.Profile.GBPerUnit
		e.bwCap[i] = math.Min(e.capable[i], math.Max(e.demand[i], 0))
	}
	sched.WaterfillInto(e.allocBW, e.sat, e.availBW, e.bwCap, e.demand)

	// Blend compute and memory legs per app (see Evaluate).
	for i, a := range apps {
		mi := a.Profile.MemIntensity
		e.perAppBW[i] = 0
		if e.compute[i] <= 0 {
			ev.Rates[i] = 0
			continue
		}
		if mi <= 0 || a.Profile.GBPerUnit <= 0 {
			ev.Rates[i] = e.compute[i]
			continue
		}
		memRate := e.allocBW[i] / a.Profile.GBPerUnit
		if memRate <= 0 {
			ev.Rates[i] = e.compute[i] * (1 - mi)
			continue
		}
		ev.Rates[i] = 1 / ((1-mi)/e.compute[i] + mi/memRate)
		ev.PerAppBW[i] = math.Min(ev.Rates[i]*a.Profile.GBPerUnit, e.allocBW[i])
		ev.MemBWGBs += ev.PerAppBW[i]
	}

	// Power-model load terms that depend on achieved bandwidth (see
	// Evaluate; busyCores and stallDen were accumulated at rebuild).
	stallNum := 0.0
	for i, a := range apps {
		cores := e.pl.CoreAlloc[i]
		if cores <= 0 {
			continue
		}
		spin := e.spins[i].Frac
		sat := 1.0
		if e.demand[i] > 1e-9 {
			sat = clamp01(e.allocBW[i] / e.demand[i])
		}
		stall := a.Profile.MemIntensity * (0.6 + 0.4*sat)
		spinStallEq := (1 - spinPowerFactor) / (1 - p.StallPowerFactor)
		stallNum += cores * ((1-spin)*stall + spin*spinStallEq)

		ipc := a.Profile.IPC
		useful := cores * (1 - spin) * (1 - stall*0.5)
		spinning := cores * spin
		ev.GIPS += (useful + spinning) * e.fGHz * ipc
	}
	stall := 0.0
	if e.stallDen > 0 {
		stall = stallNum / e.stallDen
	}

	for s := range e.loads {
		e.loads[s] = machine.SocketLoad{}
	}
	active := cfg.Sockets
	for s := 0; s < active; s++ {
		e.loads[s] = machine.SocketLoad{
			BusyCores: e.busyCores / float64(active),
			HTShare:   e.htShare,
			StallFrac: stall,
		}
	}
	for s := 0; s < cfg.MemCtls && s < p.Sockets; s++ {
		e.loads[s].BWGBs = ev.MemBWGBs / float64(cfg.MemCtls)
	}
	for s := range e.loads {
		e.loads[s].TempC = e.tempQ[s]
	}
	ev.PowerTotal = p.PowerInto(e.powerSocket, cfg, e.loads)
	ev.PowerSocket = e.powerSocket
	return ev
}
