package system

import (
	"math"
	"testing"
	"testing/quick"

	"pupil/internal/machine"
	"pupil/internal/workload"
)

func plat() *machine.Platform { return machine.E52690Server() }

func apps(t *testing.T, threads int, names ...string) []*workload.Instance {
	t.Helper()
	specs := make([]workload.Spec, len(names))
	for i, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = workload.Spec{Profile: p, Threads: threads}
	}
	out, err := workload.NewInstances(specs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func cfg(p *machine.Platform, cores, sockets int, ht bool, mc, freq int) machine.Config {
	c := machine.Config{Cores: cores, Sockets: sockets, HT: ht, MemCtls: mc}.Normalize(p)
	for s := range c.Freq {
		c.Freq[s] = freq
	}
	return c
}

func TestEvaluateEmptySystemIsIdle(t *testing.T) {
	p := plat()
	ev := Evaluate(p, machine.MaxConfig(p), nil, 0)
	if ev.TotalRate() != 0 {
		t.Errorf("empty system has rate %g", ev.TotalRate())
	}
	if ev.PowerTotal <= 0 {
		t.Errorf("empty system should still draw idle power, got %g", ev.PowerTotal)
	}
}

func TestRateGrowsWithFrequencyForComputeApp(t *testing.T) {
	p := plat()
	as := apps(t, 32, "swaptions")
	prev := 0.0
	for f := 0; f < p.NumFreqSettings(); f++ {
		ev := Evaluate(p, cfg(p, 8, 2, true, 2, f), as, 0)
		if ev.Rates[0] <= prev {
			t.Fatalf("swaptions rate not increasing at speed %d: %g after %g", f, ev.Rates[0], prev)
		}
		prev = ev.Rates[0]
	}
}

func TestRateGrowsWithCoresForScalableApp(t *testing.T) {
	p := plat()
	as := apps(t, 32, "blackscholes")
	prev := 0.0
	for cores := 1; cores <= 8; cores++ {
		ev := Evaluate(p, cfg(p, cores, 2, false, 2, 14), as, 0)
		if ev.Rates[0] <= prev {
			t.Fatalf("blackscholes rate not increasing at %d cores: %g after %g", cores, ev.Rates[0], prev)
		}
		prev = ev.Rates[0]
	}
}

// TestKmeansRetrogradeScaling reproduces the paper's kmeans finding: adding
// the second socket reduces performance because inter-socket communication
// becomes the bottleneck, while power goes up.
func TestKmeansRetrogradeScaling(t *testing.T) {
	p := plat()
	as := apps(t, 32, "kmeans")
	one := Evaluate(p, cfg(p, 8, 1, true, 1, 14), as, 0)
	two := Evaluate(p, cfg(p, 8, 2, true, 2, 14), as, 0)
	if two.Rates[0] >= one.Rates[0] {
		t.Errorf("kmeans on 2 sockets (%g) should be slower than 1 socket (%g)", two.Rates[0], one.Rates[0])
	}
	if two.PowerTotal <= one.PowerTotal {
		t.Errorf("kmeans on 2 sockets should burn more power (%g vs %g)", two.PowerTotal, one.PowerTotal)
	}
}

// TestX264HyperthreadingHurts reproduces the motivational example: with
// hyperthreads x264 consumes more power and loses a little performance.
func TestX264HyperthreadingHurts(t *testing.T) {
	p := plat()
	as := apps(t, 32, "x264")
	htOff := Evaluate(p, cfg(p, 8, 2, false, 2, 14), as, 0)
	htOn := Evaluate(p, cfg(p, 8, 2, true, 2, 14), as, 0)
	if htOn.Rates[0] >= htOff.Rates[0] {
		t.Errorf("x264 with HT (%g) should be slower than without (%g)", htOn.Rates[0], htOff.Rates[0])
	}
	if htOn.PowerTotal <= htOff.PowerTotal {
		t.Errorf("x264 with HT should burn more power (%g vs %g)", htOn.PowerTotal, htOff.PowerTotal)
	}
}

// TestStreamSaturatesBandwidth: STREAM reaches most of its peak with a few
// cores; doubling cores past saturation burns power for <10% more speed.
func TestStreamSaturatesBandwidth(t *testing.T) {
	p := plat()
	as := apps(t, 32, "STREAM")
	few := Evaluate(p, cfg(p, 4, 2, false, 2, 14), as, 0)
	all := Evaluate(p, cfg(p, 8, 2, false, 2, 14), as, 0)
	if all.Rates[0] > few.Rates[0]*1.15 {
		t.Errorf("STREAM at 16 cores (%g) should be within 15%% of 8 cores (%g)", all.Rates[0], few.Rates[0])
	}
	if all.PowerTotal <= few.PowerTotal {
		t.Errorf("extra cores should burn more power")
	}
	if all.MemBWGBs < 0.75*p.TotalBWGBs(2) {
		t.Errorf("STREAM achieved %g GB/s, want near peak %g", all.MemBWGBs, p.TotalBWGBs(2))
	}
}

func TestStreamBandwidthHighest(t *testing.T) {
	p := plat()
	c := cfg(p, 8, 2, false, 2, 14)
	stream := Evaluate(p, c, apps(t, 32, "STREAM"), 0).MemBWGBs
	for _, name := range workload.Names() {
		if name == "STREAM" {
			continue
		}
		bw := Evaluate(p, c, apps(t, 32, name), 0).MemBWGBs
		if bw >= stream {
			t.Errorf("%s bandwidth %g >= STREAM's %g", name, bw, stream)
		}
	}
}

func TestDijkstraLimitedParallelism(t *testing.T) {
	p := plat()
	as := apps(t, 32, "dijkstra")
	two := Evaluate(p, cfg(p, 2, 1, false, 1, 14), as, 0)
	sixteen := Evaluate(p, cfg(p, 8, 2, false, 2, 14), as, 0)
	if sixteen.Rates[0] > 2.5*two.Rates[0] {
		t.Errorf("dijkstra 16-core rate %g should be < 2.5x its 2-core rate %g", sixteen.Rates[0], two.Rates[0])
	}
}

// TestObliviousMixSpins reproduces the Table 6 pathology: an oblivious mix
// containing polling apps, throttled to meet a 140 W cap on the max
// configuration (what RAPL does), burns a large fraction of cycles
// spinning — far more than the cooperative version of the same mix.
func TestObliviousMixSpins(t *testing.T) {
	p := plat()
	names := []string{"kmeans", "dijkstra", "x264", "STREAM"} // mix8
	obliv := bestUnderCap(p, machine.MaxConfig(p), apps(t, 32, names...), 140)
	coop := bestUnderCap(p, machine.MaxConfig(p), apps(t, 8, names...), 140)
	if obliv.SpinFrac < 0.20 {
		t.Errorf("oblivious mix8 spin fraction %g, want > 0.20", obliv.SpinFrac)
	}
	if coop.SpinFrac >= obliv.SpinFrac {
		t.Errorf("cooperative spin %g should be below oblivious %g", coop.SpinFrac, obliv.SpinFrac)
	}
}

// bestUnderCap evaluates base at every speed setting (with duty fallback
// below the lowest p-state) and returns the evaluation of the fastest
// setting whose power respects capW — the comparison every power capper
// implicitly makes.
func bestUnderCap(p *machine.Platform, base machine.Config, as []*workload.Instance, capW float64) Eval {
	var best Eval
	found := false
	for f := 0; f < p.NumFreqSettings(); f++ {
		c := base.Clone()
		for s := range c.Freq {
			c.Freq[s] = f
		}
		ev := Evaluate(p, c, as, 0)
		if ev.PowerTotal <= capW {
			best = ev
			found = true
		}
	}
	if !found {
		// Duty-cycle down from the lowest p-state until under cap.
		for d := 0.95; d >= 0.05; d -= 0.05 {
			c := base.Clone()
			for s := range c.Freq {
				c.Freq[s] = 0
				c.Duty[s] = d
			}
			ev := Evaluate(p, c, as, 0)
			if ev.PowerTotal <= capW {
				return ev
			}
		}
	}
	return best
}

// TestFewerCoresHelpObliviousMix: under a 140 W budget, restricting an
// oblivious polling mix to one socket (and clocking it up) beats running
// everything (throttled down) — the core PUPiL insight for the oblivious
// scenario (Section 5.4.3).
func TestFewerCoresHelpObliviousMix(t *testing.T) {
	p := plat()
	names := []string{"kmeans", "dijkstra", "x264", "STREAM"}
	all := bestUnderCap(p, machine.MaxConfig(p), apps(t, 32, names...), 140)
	restricted := bestUnderCap(p, cfg(p, 8, 1, false, 2, 14), apps(t, 32, names...), 140)
	if restricted.TotalRate() <= all.TotalRate() {
		t.Errorf("restricted config rate %g should beat max config rate %g for oblivious mix8 at 140 W",
			restricted.TotalRate(), all.TotalRate())
	}
	if restricted.SpinFrac >= all.SpinFrac {
		t.Errorf("restricted config spin %g should be below max config spin %g",
			restricted.SpinFrac, all.SpinFrac)
	}
}

func TestPowerAccountingConsistent(t *testing.T) {
	p := plat()
	ev := Evaluate(p, machine.MaxConfig(p), apps(t, 32, "jacobi"), 0)
	sum := 0.0
	for _, w := range ev.PowerSocket {
		sum += w
	}
	if math.Abs(sum-ev.PowerTotal) > 1e-9 {
		t.Errorf("per-socket power %v does not sum to total %g", ev.PowerSocket, ev.PowerTotal)
	}
}

func TestDutyCycleThrottlesPowerAndPerf(t *testing.T) {
	p := plat()
	as := apps(t, 32, "swaptions")
	full := Evaluate(p, machine.MaxConfig(p), as, 0)
	half := machine.MaxConfig(p)
	half.Duty[0], half.Duty[1] = 0.5, 0.5
	throttled := Evaluate(p, half, as, 0)
	if throttled.PowerTotal >= full.PowerTotal {
		t.Errorf("duty cycling should cut power: %g vs %g", throttled.PowerTotal, full.PowerTotal)
	}
	if throttled.Rates[0] >= full.Rates[0] {
		t.Errorf("duty cycling should cut performance: %g vs %g", throttled.Rates[0], full.Rates[0])
	}
}

// Property: rates, power, and counters are always finite and non-negative
// across the whole enumerable configuration space for a representative mix.
func TestEvaluateSanityAcrossConfigSpace(t *testing.T) {
	p := plat()
	as := apps(t, 32, "kmeans", "STREAM")
	machine.Enumerate(p, func(c machine.Config) bool {
		ev := Evaluate(p, c, as, 0)
		for i, r := range ev.Rates {
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				t.Fatalf("config %v app %d rate %g invalid", c, i, r)
			}
		}
		if ev.PowerTotal <= 0 || math.IsNaN(ev.PowerTotal) {
			t.Fatalf("config %v power %g invalid", c, ev.PowerTotal)
		}
		if ev.SpinFrac < 0 || ev.SpinFrac > 1 {
			t.Fatalf("config %v spin %g outside [0,1]", c, ev.SpinFrac)
		}
		if ev.MemBWGBs < 0 || ev.MemBWGBs > p.TotalBWGBs(p.MemCtls)+1e-6 {
			t.Fatalf("config %v bandwidth %g outside [0, peak]", c, ev.MemBWGBs)
		}
		return true
	})
}

// Property: power at the same configuration never decreases when frequency
// setting increases, for random app subsets.
func TestPowerMonotoneInFrequencyProperty(t *testing.T) {
	p := plat()
	names := workload.Names()
	f := func(pick [2]uint8, freqRaw, coresRaw uint8) bool {
		as := apps(t, 32, names[int(pick[0])%len(names)], names[int(pick[1])%len(names)])
		fi := int(freqRaw) % (p.NumFreqSettings() - 1)
		cores := int(coresRaw)%8 + 1
		lo := Evaluate(p, cfg(p, cores, 2, true, 2, fi), as, 0)
		hi := Evaluate(p, cfg(p, cores, 2, true, 2, fi+1), as, 0)
		return hi.PowerTotal >= lo.PowerTotal-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGIPSPositiveForBusySystem(t *testing.T) {
	p := plat()
	ev := Evaluate(p, machine.MaxConfig(p), apps(t, 32, "blackscholes"), 0)
	if ev.GIPS <= 0 {
		t.Errorf("GIPS = %g, want positive", ev.GIPS)
	}
	// Sanity bound: can't exceed cores * turbo * max IPC * ht factor.
	bound := 16 * p.TurboGHz * 2.5 * 2
	if ev.GIPS > bound {
		t.Errorf("GIPS = %g exceeds physical bound %g", ev.GIPS, bound)
	}
}

// TestAffinityPackingRemovesCrossSocketPenalty: pinning an app to at most
// one socket's worth of cores removes its spanning costs even when the
// global configuration keeps both sockets (the EAS mechanism).
func TestAffinityPackingRemovesCrossSocketPenalty(t *testing.T) {
	p := plat()
	as := apps(t, 32, "kmeans", "blackscholes")
	c := cfg(p, 8, 2, true, 2, 14)
	before := Evaluate(p, c, as, 0)
	as[0].AffinityCores = 8 // pack kmeans onto one socket
	after := Evaluate(p, c, as, 0)
	if after.Rates[0] <= before.Rates[0] {
		t.Errorf("packed kmeans %.2f should beat spanning kmeans %.2f", after.Rates[0], before.Rates[0])
	}
	if after.PerAppSpin[0] > before.PerAppSpin[0] {
		t.Errorf("packing should not increase spin: %.2f -> %.2f", before.PerAppSpin[0], after.PerAppSpin[0])
	}
}

// TestPerAppBandwidthSumsToTotal: the per-app bandwidth decomposition must
// sum to the machine figure and stay within the platform peak.
func TestPerAppBandwidthDecomposition(t *testing.T) {
	p := plat()
	as := apps(t, 32, "STREAM", "jacobi", "cfd")
	ev := Evaluate(p, machine.MaxConfig(p), as, 0)
	sum := 0.0
	for _, bw := range ev.PerAppBW {
		if bw < 0 {
			t.Fatalf("negative per-app bandwidth: %v", ev.PerAppBW)
		}
		sum += bw
	}
	if math.Abs(sum-ev.MemBWGBs) > 1e-6 {
		t.Errorf("per-app bandwidth sums to %.2f, machine reports %.2f", sum, ev.MemBWGBs)
	}
	if ev.MemBWGBs > p.TotalBWGBs(p.MemCtls)+1e-9 {
		t.Errorf("achieved bandwidth %.2f exceeds peak %.2f", ev.MemBWGBs, p.TotalBWGBs(p.MemCtls))
	}
}

// Property: adding an application never increases any co-runner's rate
// (shared machine; more contention cannot help).
func TestAddingAppNeverHelpsProperty(t *testing.T) {
	p := plat()
	names := workload.Names()
	f := func(a, b uint8) bool {
		first := names[int(a)%len(names)]
		second := names[int(b)%len(names)]
		solo := Evaluate(p, machine.MaxConfig(p), apps(t, 32, first), 0)
		duo := Evaluate(p, machine.MaxConfig(p), apps(t, 32, first, second), 0)
		return duo.Rates[0] <= solo.Rates[0]*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the spin fraction decomposition stays within bounds for random
// mixes and configurations.
func TestSpinDecompositionBounds(t *testing.T) {
	p := plat()
	names := workload.Names()
	f := func(a, b, coresRaw uint8, ht bool) bool {
		cores := int(coresRaw)%8 + 1
		as := apps(t, 32, names[int(a)%len(names)], names[int(b)%len(names)])
		ev := Evaluate(p, cfg(p, cores, 2, ht, 2, 10), as, 0)
		for _, s := range ev.PerAppSpin {
			if s < 0 || s > 1 {
				return false
			}
		}
		return ev.SpinFrac >= 0 && ev.SpinFrac <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
