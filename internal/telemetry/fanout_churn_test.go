package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A subscriber churn storm: many goroutines subscribing, reading a little,
// and cancelling while a publisher runs flat out. The fan-out must neither
// leak goroutines nor lose accounting — every value a subscriber failed to
// receive shows up in a drop counter, and the registry drains back to
// exactly the survivors.
func TestFanoutChurnStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	f := NewFanout[int]()

	stop := make(chan struct{})
	var pub sync.WaitGroup
	pub.Add(1)
	go func() {
		defer pub.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				f.Publish(i)
			}
		}
	}()
	var wg sync.WaitGroup

	const workers, cycles = 16, 40
	var churned atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				sub := f.Subscribe(2)
				// Read a couple of values (the publisher may momentarily
				// pause, so don't insist), then walk away mid-stream.
				for j := 0; j < 2; j++ {
					select {
					case _, ok := <-sub.C():
						if !ok {
							t.Error("subscriber channel closed while fan-out is open")
							return
						}
					case <-time.After(10 * time.Second):
						t.Error("publisher starved a live subscriber")
						return
					}
				}
				sub.Cancel()
				churned.Add(1)
			}
		}()
	}

	wg.Wait() // workers done; stop the publisher too
	close(stop)
	pub.Wait()

	if got := churned.Load(); got != workers*cycles {
		t.Fatalf("churned %d subscriber cycles, want %d", got, workers*cycles)
	}
	if n := f.Subscribers(); n != 0 {
		t.Fatalf("registry retains %d subscribers after full churn", n)
	}

	// A late subscriber still gets the final value before Close: the last
	// publish lands in its buffer and survives the close.
	sub := f.Subscribe(8)
	f.Publish(424242)
	f.Close()
	var last int
	got := false
	for v := range sub.C() {
		last, got = v, true
	}
	if !got || last != 424242 {
		t.Fatalf("final value = %d (received %v), want 424242", last, got)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("final subscriber dropped %d values with a roomy buffer", d)
	}

	// Subscriptions are plain channels — the storm must leave no goroutines
	// behind beyond what the runtime had before.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d -> %d across the churn storm", before, after)
	}
}

// Drop accounting stays coherent under churn: the fan-out total equals at
// least every live subscriber's count, and keeps counting drops from
// subscribers that cancelled long ago.
func TestFanoutChurnDropAccounting(t *testing.T) {
	f := NewFanout[int]()
	defer f.Close()

	// A one-slot subscriber that never reads: every publish past the first
	// drops something.
	stuck := f.Subscribe(1)
	for i := 0; i < 10; i++ {
		f.Publish(i)
	}
	if d := stuck.Dropped(); d != 9 {
		t.Fatalf("stuck subscriber dropped %d, want 9", d)
	}
	if tot := f.TotalDropped(); tot != 9 {
		t.Fatalf("TotalDropped = %d, want 9", tot)
	}
	stuck.Cancel()

	// New stuck subscriber: its drops accumulate on top of the cancelled
	// one's in the fan-out total.
	stuck2 := f.Subscribe(1)
	for i := 0; i < 5; i++ {
		f.Publish(i)
	}
	if d := stuck2.Dropped(); d != 4 {
		t.Fatalf("second stuck subscriber dropped %d, want 4", d)
	}
	if tot := f.TotalDropped(); tot != 13 {
		t.Fatalf("TotalDropped = %d, want 13 (9 from the cancelled subscriber + 4)", tot)
	}
}
