package pipeline

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestExpositionGolden pins the rendered page byte for byte: header
// layout, label order and escaping, gauge/counter value formatting, and
// the gathered-before-pushed family ordering. Regenerate with -update.
func TestExpositionGolden(t *testing.T) {
	e := NewExposition()
	e.AddGatherer(staticCollector{
		fams: []MetricFamily{
			{Name: "pupil_power_watts", Help: "Instantaneous simulated node power draw in Watts.", Kind: Gauge},
			{Name: "pupil_epochs_total", Help: "Simulation ticks the node has executed.", Kind: Counter},
			{Name: "pupil_idle", Help: "A family with no samples still renders its header.", Kind: Gauge},
		},
		samples: []Sample{
			{Family: "pupil_power_watts", Node: "n1", Value: 96.53971823},
			{Family: "pupil_power_watts", Node: "n1", Zone: "package_0", Value: 48.25},
			{Family: "pupil_power_watts", Node: "n1", Zone: "package_0_dram", Value: 7.5},
			{Family: "pupil_power_watts", Cluster: "c1", Node: `we"ird\name` + "\n", Value: 12},
			{Family: "pupil_epochs_total", Node: "n1", Value: 1e6},     // integral: plain, not 1e+06
			{Family: "pupil_epochs_total", Node: "n2", Value: 1e16},    // too wide for plain: %g form
			{Family: "pupil_epochs_total", Node: "n3", Value: -0.0625}, // negative fraction
		},
	})
	e.Register(MetricFamily{Name: "pupil_pushed_total", Help: "A pushed counter.", Kind: Counter})
	if err := e.Write([]Sample{
		{Family: "pupil_pushed_total", Sink: "csv", Value: 3},
		{Family: "pupil_pushed_total", Sink: "ndjson", Value: 4},
		{Family: "pupil_unregistered", Value: 1}, // auto-registered, no help
	}); err != nil {
		t.Fatal(err)
	}
	// A second write upserts the existing series in place.
	if err := e.Write([]Sample{{Family: "pupil_pushed_total", Sink: "csv", Value: 5}}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition page drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExpositionServeHTTP pins the scrape content type.
func TestExpositionServeHTTP(t *testing.T) {
	e := NewExposition()
	e.AddGatherer(staticCollector{
		fams:    []MetricFamily{{Name: "pupil_up", Help: "Up.", Kind: Gauge}},
		samples: []Sample{{Family: "pupil_up", Value: 1}},
	})
	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q, want %q", got, ContentType)
	}
	if body := rec.Body.String(); !strings.Contains(body, "# TYPE pupil_up gauge\npupil_up 1\n") {
		t.Errorf("body = %q", body)
	}
}

// TestDomainLabel: the domain label renders between cluster and node and
// keys series separately, so per-domain families never collide.
func TestDomainLabel(t *testing.T) {
	s := Sample{Family: "pupil_cluster_domain_budget_watts", Cluster: "c1", Domain: "rack0", Value: 200}
	got := string(appendSample(nil, s))
	want := `pupil_cluster_domain_budget_watts{cluster="c1",domain="rack0"} 200` + "\n"
	if got != want {
		t.Errorf("rendered %q, want %q", got, want)
	}
	withNode := Sample{Family: "pupil_cluster_node_cap_watts", Cluster: "c1", Domain: "rack0", Node: "n3", Value: 90}
	got = string(appendSample(nil, withNode))
	want = `pupil_cluster_node_cap_watts{cluster="c1",domain="rack0",node="n3"} 90` + "\n"
	if got != want {
		t.Errorf("rendered %q, want %q", got, want)
	}
	other := s
	other.Domain = "rack1"
	if seriesKey(s) == seriesKey(other) {
		t.Error("series differing only in domain share a key")
	}
	// A sample with no domain keeps its exact pre-domain byte layout.
	flat := Sample{Family: "pupil_cluster_budget_watts", Cluster: "c1", Value: 400}
	if got := string(appendSample(nil, flat)); got != `pupil_cluster_budget_watts{cluster="c1"} 400`+"\n" {
		t.Errorf("flat sample drifted: %q", got)
	}
}

func TestAppendValueFormats(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{-3, "-3"},
		{1e6, "1000000"}, // counters never flip to exponent form
		{1e15, "1e+15"},  // beyond the plain-notation window
		{96.5, "96.5"},
		{0.0001, "0.0001"},
		{123456.789, "123456.789"},
	}
	for _, c := range cases {
		if got := string(appendValue(nil, c.v)); got != c.want {
			t.Errorf("appendValue(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestLabelEscapeRoundtrip(t *testing.T) {
	cases := []string{"", "plain", `back\slash`, `quo"te`, "new\nline", `all\"three` + "\n"}
	for _, c := range cases {
		esc := string(appendEscapedLabel(nil, c))
		if strings.ContainsAny(esc, "\n") {
			t.Errorf("escaped %q contains a raw newline: %q", c, esc)
		}
		if got := UnescapeLabel(esc); got != c {
			t.Errorf("roundtrip %q -> %q -> %q", c, esc, got)
		}
	}
	// Unknown escapes and trailing backslashes pass through.
	if got := UnescapeLabel(`\x\`); got != `\x\` {
		t.Errorf("UnescapeLabel(%q) = %q", `\x\`, got)
	}
}
