package cluster

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pupil/internal/driver"
)

func sumOf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Regression: normalize used to return early when every cap sat at the
// floor, stranding budget - floor*N watts. The remainder must be
// distributed so assignments always sum to the budget.
func TestNormalizeAllAtFloor(t *testing.T) {
	caps := []float64{10, 20} // both clamp to the 25 W floor
	normalize(caps, 110, 25)
	if got := sumOf(caps); math.Abs(got-110) > 1e-9 {
		t.Errorf("all-at-floor normalize sums to %g, want the 110 W budget (caps %v)", got, caps)
	}
	if math.Abs(caps[0]-caps[1]) > 1e-9 {
		t.Errorf("remaining budget not split evenly: %v", caps)
	}
	for _, c := range caps {
		if c < 25-1e-9 {
			t.Errorf("cap %v below floor", caps)
		}
	}

	// Exactly-at-floor budget: nodes stay pinned to the floor.
	caps = []float64{5, 5, 5}
	normalize(caps, 75, 25)
	for _, c := range caps {
		if math.Abs(c-25) > 1e-9 {
			t.Errorf("floor-tight budget should pin every node at 25 W: %v", caps)
		}
	}
}

// Regression: SetNodeCap used to mutate the assignment without recording
// it, so Result.CapTrace silently omitted manual reassignments.
func TestSetNodeCapRecordsCapTrace(t *testing.T) {
	c, err := NewCoordinator(Config{
		Nodes:       lightCluster(t),
		BudgetWatts: 200,
		Epoch:       time.Second,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := len(c.Result().CapTrace)
	if err := c.SetNodeCap(0, 120); err != nil {
		t.Fatal(err)
	}
	trace := c.Result().CapTrace
	if len(trace) != before+1 {
		t.Fatalf("SetNodeCap left CapTrace at %d rows, want %d (manual reassignments must be recorded)",
			len(trace), before+1)
	}
	last := trace[len(trace)-1]
	if last[0] != 120 {
		t.Errorf("recorded row %v does not reflect the 120 W reassignment", last)
	}
}

// spyPolicy records the demand vector each rebalance observes and keeps
// the assignment unchanged (even-policy behaviour).
type spyPolicy struct {
	observed [][]float64
}

func (s *spyPolicy) Name() string { return "spy" }

func (s *spyPolicy) Rebalance(next, assigned, meanPower []float64) {
	s.observed = append(s.observed, append([]float64(nil), meanPower...))
	copy(next, assigned)
}

// Regression: Step used to window demand over the configured epoch even
// when advancing by d != Epoch, mixing stale pre-step samples into the
// rebalance decision. The demand a partial step observes must equal the
// node's mean power over exactly the elapsed step.
func TestStepWindowsOverElapsedStep(t *testing.T) {
	specs := mixedCluster(t, "RAPL")[:2]
	spy := &spyPolicy{}
	cfg := Config{
		Nodes:       specs,
		BudgetWatts: 300,
		Epoch:       10 * time.Second,
		Policy:      spy,
		Seed:        5,
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One full epoch at the even 150 W split, then raise the budget (180 W
	// each) and take a partial 2 s step: the power level during those 2 s
	// differs from the trailing-epoch mean, so the two windows disagree.
	if err := c.Step(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBudget(360); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(spy.observed) != 2 {
		t.Fatalf("spy observed %d rebalances, want 2", len(spy.observed))
	}

	// Replay each node standalone through the same cap schedule; the
	// coordinator's demand measurement must match the replayed session's
	// mean power over exactly the elapsed step.
	for i, spec := range specs {
		s, err := driver.NewSession(driver.Scenario{
			Platform:   spec.Platform,
			Specs:      spec.Specs,
			CapWatts:   150,
			Controller: spec.NewController(spec.Platform),
			Seed:       cfg.Seed ^ (uint64(i) * 0x9e3779b97f4a7c15),
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Advance(10 * time.Second)
		if err := s.SetCap(180); err != nil {
			t.Fatal(err)
		}
		s.Advance(2 * time.Second)
		want := s.MeanPower(2 * time.Second)
		if got := spy.observed[1][i]; got != want {
			t.Errorf("node %d: partial 2s step observed %.6f W of demand, want the 2s-window mean %.6f W",
				i, got, want)
		}
	}
}

// lightCluster builds two lightly loaded nodes — cheap enough for the
// randomized property sequences.
func lightCluster(t *testing.T) []NodeSpec {
	return nodes(t, "RAPL", [][2]interface{}{
		{"kmeans", 8},
		{"STREAM", 8},
	})
}

// TestCoordinatorProperties drives random Step/SetBudget/SetNodeCap
// sequences against every policy and asserts the accounting invariants:
// after any rebalancing operation the assignment sums to the budget within
// 1e-9, no node is ever below the floor, and CapTrace grows by exactly one
// row per applied assignment change.
func TestCoordinatorProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized multi-epoch sequences")
	}
	policies := []Policy{EvenPolicy{}, DemandShiftPolicy{}, ProportionalSharePolicy{}}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xc0ffee))
			c, err := NewCoordinator(Config{
				Nodes:       lightCluster(t),
				BudgetWatts: 200,
				Epoch:       time.Second,
				Policy:      pol,
				Seed:        11,
			})
			if err != nil {
				t.Fatal(err)
			}
			floor := 25.0
			rows := len(c.Result().CapTrace) // the initial assignment
			for op := 0; op < 40; op++ {
				balanced := true // does the op restore sum == budget?
				switch k := rng.Intn(10); {
				case k < 6:
					d := time.Duration(1+rng.Intn(6)) * 250 * time.Millisecond
					if err := c.Step(d); err != nil {
						t.Fatalf("op %d: Step: %v", op, err)
					}
					rows++
				case k < 8:
					budget := floor*2 + rng.Float64()*300
					if err := c.SetBudget(budget); err != nil {
						t.Fatalf("op %d: SetBudget(%.1f): %v", op, budget, err)
					}
					rows++
				default:
					i := rng.Intn(2)
					watts := floor + rng.Float64()*150
					if err := c.SetNodeCap(i, watts); err != nil {
						t.Fatalf("op %d: SetNodeCap(%d, %.1f): %v", op, i, watts, err)
					}
					rows++
					balanced = false // rebalanced only on the next Step
					if got := c.Assignments()[i]; got != watts {
						t.Fatalf("op %d: SetNodeCap applied %.4f, want %.4f", op, got, watts)
					}
				}
				assigned := c.Assignments()
				for i, a := range assigned {
					if a < floor-1e-9 {
						t.Fatalf("op %d: node %d assigned %.4f W, below the %.0f W floor", op, i, a, floor)
					}
				}
				if balanced {
					if got := sumOf(assigned); math.Abs(got-c.Budget()) > 1e-9 {
						t.Fatalf("op %d: assignment sums to %.12f, want budget %.12f", op, got, c.Budget())
					}
				}
				if got := len(c.Result().CapTrace); got != rows {
					t.Fatalf("op %d: CapTrace has %d rows, want %d (one per applied change)", op, got, rows)
				}
			}
		})
	}
}

// TestParallelStepDeterminism: stepping the cluster on an 8-worker pool
// must produce a Result and CapTrace byte-identical to sequential
// stepping, including across live budget and per-node reassignments.
func TestParallelStepDeterminism(t *testing.T) {
	run := func(parallel int) *Result {
		c, err := NewCoordinator(Config{
			Nodes:       mixedCluster(t, "RAPL"),
			BudgetWatts: 400,
			Epoch:       time.Second,
			Policy:      DemandShiftPolicy{},
			Seed:        9,
			Parallel:    parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		script := func() error {
			for i := 0; i < 3; i++ {
				if err := c.Step(time.Second); err != nil {
					return err
				}
			}
			if err := c.SetBudget(320); err != nil {
				return err
			}
			if err := c.Step(750 * time.Millisecond); err != nil {
				return err
			}
			if err := c.SetNodeCap(2, 60); err != nil {
				return err
			}
			return c.Step(time.Second)
		}
		if err := script(); err != nil {
			t.Fatal(err)
		}
		return c.Result()
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel Step diverged from sequential Step")
	}
	a, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("parallel Result is not byte-identical to sequential Result")
	}
}

func TestProportionalSharePolicyMechanics(t *testing.T) {
	p := ProportionalSharePolicy{MinShareFrac: 0.5, Smoothing: 1}
	assigned := []float64{100, 100}
	meanPower := []float64{90, 30}
	next := make([]float64, len(assigned))
	p.Rebalance(next, assigned, meanPower)
	if next[0] <= next[1] {
		t.Errorf("higher-demand node did not get the larger share: %v", next)
	}
	// Demand-proportional targets: 200*90/120 = 150 and 200*30/120 = 50,
	// both above the 50 W starvation bound.
	if math.Abs(next[0]-150) > 1e-9 || math.Abs(next[1]-50) > 1e-9 {
		t.Errorf("targets %v, want [150 50]", next)
	}

	// Max-starvation bound: a node with (near-)zero demand keeps
	// MinShareFrac of its even share.
	p.Rebalance(next, []float64{100, 100}, []float64{100, 0})
	if next[1] < 50-1e-9 {
		t.Errorf("starved node squeezed to %.2f W, bound is 50 W", next[1])
	}

	// Smoothing halves the gap instead of jumping.
	smooth := ProportionalSharePolicy{MinShareFrac: 0.5, Smoothing: 0.5}
	smooth.Rebalance(next, []float64{100, 100}, []float64{90, 30})
	if math.Abs(next[0]-125) > 1e-9 || math.Abs(next[1]-75) > 1e-9 {
		t.Errorf("smoothed targets %v, want [125 75]", next)
	}

	// No demand signal at all: keep the assignment.
	ProportionalSharePolicy{}.Rebalance(next, []float64{80, 120}, []float64{0, 0})
	if next[0] != 80 || next[1] != 120 {
		t.Errorf("zero-demand rebalance changed caps: %v", next)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"", "even", "demand-shift", "proportional"} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if name != "" && p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("fastest"); err == nil {
		t.Error("PolicyByName accepted an unknown policy")
	}
}
