package machine

// SocketLoad summarizes the activity the workload imposes on one socket; it
// is produced by the system evaluator and consumed by the power model.
type SocketLoad struct {
	// BusyCores is the average number of cores with at least one busy
	// hardware thread, in [0, ActiveCores]. Spinning threads count as
	// busy: a core retiring test-and-set loops burns full dynamic power.
	BusyCores float64
	// HTShare is the fraction of busy core-time during which both
	// hardware threads of a core are occupied, in [0, 1]. Only meaningful
	// when the configuration enables hyperthreading.
	HTShare float64
	// StallFrac is the fraction of busy cycles stalled on memory, in
	// [0, 1]. Stalled cycles burn StallPowerFactor of full dynamic power.
	StallFrac float64
	// BWGBs is the memory bandwidth drawn through this socket's
	// controller, used for controller dynamic power.
	BWGBs float64
	// TempC is the socket's junction temperature, feeding the platform's
	// temperature-dependent leakage model when one is configured. Zero
	// means "unmodeled": the power model then behaves exactly as it did
	// before temperature existed.
	TempC float64
}

// SocketPower returns the modeled power of socket s under configuration c
// and load. Sustained power is clamped at the socket TDP (the package
// thermally throttles rather than exceed it).
func (p *Platform) SocketPower(c Config, s int, load SocketLoad) float64 {
	if s >= c.Sockets {
		w := p.SocketParked
		// Using a parked socket's memory controller (interleaved
		// allocation) keeps part of its uncore awake.
		if s < c.MemCtls {
			util := clampF(load.BWGBs/p.BWPerCtlGBs, 0, 1)
			w += p.MemCtlIdle + util*p.MemCtlDyn
		}
		return w
	}
	f := c.EffectiveGHz(p, s)
	busy := clampF(load.BusyCores, 0, float64(c.Cores))
	idle := float64(c.Cores) - busy

	dyn := p.CoreDynPower(f)
	if c.HT {
		// Both-threads-busy cores draw HTPowerFactor of single-thread
		// dynamic power; blend by the share of time HT is exercised.
		dyn *= 1 + (p.HTPowerFactor-1)*clampF(load.HTShare, 0, 1)
	}
	// Memory-stalled cycles burn a fraction of full dynamic power.
	stall := clampF(load.StallFrac, 0, 1)
	dyn *= (1 - stall) + stall*p.StallPowerFactor

	w := p.UncoreActive + busy*dyn + idle*p.CoreIdle

	// Controller power accrues on sockets whose controller is in use.
	// Controllers are brought up in socket order: MemCtls=1 means only
	// socket 0's controller is active.
	if s < c.MemCtls {
		util := clampF(load.BWGBs/p.BWPerCtlGBs, 0, 1)
		w += p.MemCtlIdle + util*p.MemCtlDyn
	}

	// Temperature-dependent leakage: hot silicon draws more static power.
	// Parked sockets are power-gated and draw none, so only this active
	// branch pays it. ExcessW is exactly zero at the calibration
	// temperature, keeping ambient-temperature totals bit-identical.
	if p.Leakage != nil {
		w += p.Leakage.ExcessW(load.TempC)
	}

	if w > p.SocketTDP {
		w = p.SocketTDP
	}
	return w
}

// PowerBreakdown splits one socket's modeled power into RAPL-style zones.
// TotalW always equals SocketPower for the same arguments, bit for bit;
// the components sum to it (scaled proportionally when the TDP clamp
// engages).
type PowerBreakdown struct {
	// TotalW is the socket's power — the package zone.
	TotalW float64
	// CoreW is the core zone: busy-core dynamic power plus idle-core
	// leakage. Zero on a parked socket.
	CoreW float64
	// DramW is the dram zone: the memory controller's static and
	// bandwidth-proportional power, when the controller is in use.
	DramW float64
	// UncoreW is the remainder: the active uncore, or the parked-socket
	// floor.
	UncoreW float64
}

// SocketPowerBreakdown reports socket s's power split into package, core,
// and dram zones. The total is computed by SocketPower itself — the
// arithmetic order the golden files pin — and the component terms mirror
// its construction, rescaled to the clamped total when the socket hits
// its TDP.
func (p *Platform) SocketPowerBreakdown(c Config, s int, load SocketLoad) PowerBreakdown {
	var b PowerBreakdown
	b.TotalW = p.SocketPower(c, s, load)
	if s >= c.Sockets {
		b.UncoreW = p.SocketParked
		if s < c.MemCtls {
			util := clampF(load.BWGBs/p.BWPerCtlGBs, 0, 1)
			b.DramW = p.MemCtlIdle + util*p.MemCtlDyn
		}
	} else {
		f := c.EffectiveGHz(p, s)
		busy := clampF(load.BusyCores, 0, float64(c.Cores))
		idle := float64(c.Cores) - busy
		dyn := p.CoreDynPower(f)
		if c.HT {
			dyn *= 1 + (p.HTPowerFactor-1)*clampF(load.HTShare, 0, 1)
		}
		stall := clampF(load.StallFrac, 0, 1)
		dyn *= (1 - stall) + stall*p.StallPowerFactor
		b.UncoreW = p.UncoreActive
		b.CoreW = busy*dyn + idle*p.CoreIdle
		if s < c.MemCtls {
			util := clampF(load.BWGBs/p.BWPerCtlGBs, 0, 1)
			b.DramW = p.MemCtlIdle + util*p.MemCtlDyn
		}
		// Leakage lives in the core zone: it is transistor static power,
		// mirroring the term SocketPower adds to the total.
		if p.Leakage != nil {
			b.CoreW += p.Leakage.ExcessW(load.TempC)
		}
	}
	// When the TDP clamp lowered the total below the raw component sum,
	// scale the zones so they still account for exactly the clamped power.
	if sum := b.CoreW + b.DramW + b.UncoreW; sum > 0 && b.TotalW < sum {
		scale := b.TotalW / sum
		b.CoreW *= scale
		b.DramW *= scale
		b.UncoreW *= scale
	}
	return b
}

// Power returns total machine power and the per-socket breakdown. loads may
// be shorter than the socket count; missing entries are treated as idle.
func (p *Platform) Power(c Config, loads []SocketLoad) (total float64, perSocket []float64) {
	perSocket = make([]float64, p.Sockets)
	total = p.PowerInto(perSocket, c, loads)
	return total, perSocket
}

// PowerInto is Power with a caller-owned per-socket slice (length must be
// the platform socket count); it returns the total. The evaluator's hot
// path uses it to avoid a per-refresh allocation.
func (p *Platform) PowerInto(perSocket []float64, c Config, loads []SocketLoad) (total float64) {
	if len(perSocket) != p.Sockets {
		panic("machine: PowerInto slice length mismatch")
	}
	for s := 0; s < p.Sockets; s++ {
		var l SocketLoad
		if s < len(loads) {
			l = loads[s]
		}
		perSocket[s] = p.SocketPower(c, s, l)
		total += perSocket[s]
	}
	return total
}

// IdlePower returns the machine's power with every active core idle, the
// floor any capping system can reach without parking sockets.
func (p *Platform) IdlePower(c Config) float64 {
	total, _ := p.Power(c, make([]SocketLoad, p.Sockets))
	return total
}
