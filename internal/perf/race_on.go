//go:build race

package perf

// raceEnabled reports whether the race detector instruments this build;
// wall-clock assertions are meaningless under its overhead.
const raceEnabled = true
