package driver

import (
	"fmt"
	"time"

	"pupil/internal/core"
	"pupil/internal/faults"
	"pupil/internal/machine"
)

// DegradeLevel is a rung of the supervision ladder.
type DegradeLevel int

// The ladder, from healthy to most defensive.
const (
	// DegradeNormal: the software decision framework is in charge.
	DegradeNormal DegradeLevel = iota
	// DegradeHardwareOnly: the framework is suppressed and the machine
	// runs the maximum configuration under evenly-split RAPL caps — the
	// paper's hardware safety floor.
	DegradeHardwareOnly
	// DegradeBackoff: the floor itself failed to hold (a misprogrammed
	// limit register), so the programmed caps are scaled down until the
	// measured power complies.
	DegradeBackoff
	// DegradeProbing: suppression is lifted to test whether the framework
	// has recovered; failure re-degrades with doubled backoff.
	DegradeProbing
)

// String renders the level for telemetry and tables.
func (l DegradeLevel) String() string {
	switch l {
	case DegradeNormal:
		return "normal"
	case DegradeHardwareOnly:
		return "hardware-only"
	case DegradeBackoff:
		return "cap-backoff"
	case DegradeProbing:
		return "probing"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// DegradeEvent records one supervision transition.
type DegradeEvent struct {
	T        time.Duration
	From, To DegradeLevel
	Reason   string
}

// WatchdogConfig tunes the supervision layer. The zero value of any field
// selects the default; DefaultWatchdog returns the defaults explicitly.
type WatchdogConfig struct {
	// Period is the supervision tick.
	Period time.Duration
	// Window is the trailing power-feedback window breaches are judged on.
	Window time.Duration
	// BreachFactor scales the cap into the breach threshold (1.05 = 5%
	// over the cap counts as a breach).
	BreachFactor float64
	// BreachHold is how long a breach must persist before the watchdog
	// acts — transients during re-tuning are not failures.
	BreachHold time.Duration
	// StartupGrace suppresses the watchdog while the run boots (sensor
	// warm-up plus the firmware's initial settling).
	StartupGrace time.Duration
	// StallTimeout declares the decision loop hung when no decision
	// completes for this long. It must exceed the slowest controller
	// period (Soft-DVFS decides every 2 s).
	StallTimeout time.Duration
	// ProbeBackoff is the initial delay before probing recovery; each
	// failed probe doubles it up to MaxBackoff.
	ProbeBackoff time.Duration
	// MaxBackoff bounds the probe delay.
	MaxBackoff time.Duration
	// BackoffStep scales the programmed caps down on each escalation when
	// the hardware floor itself fails to hold.
	BackoffStep float64
	// MinCapScale floors the cap back-off.
	MinCapScale float64
	// RecoveryHold is how long a probe must stay healthy (live decisions,
	// no sustained breach) before the watchdog returns to normal.
	RecoveryHold time.Duration
}

// DefaultWatchdog returns the supervision defaults used throughout the
// chaos evaluation.
func DefaultWatchdog() *WatchdogConfig {
	return &WatchdogConfig{
		Period:       100 * time.Millisecond,
		Window:       time.Second,
		BreachFactor: 1.05,
		BreachHold:   1500 * time.Millisecond,
		StartupGrace: 2 * time.Second,
		StallTimeout: 3 * time.Second,
		ProbeBackoff: 5 * time.Second,
		MaxBackoff:   40 * time.Second,
		BackoffStep:  0.85,
		MinCapScale:  0.4,
		RecoveryHold: 3 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultWatchdog.
func (c WatchdogConfig) withDefaults() WatchdogConfig {
	d := DefaultWatchdog()
	if c.Period <= 0 {
		c.Period = d.Period
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.BreachFactor <= 0 {
		c.BreachFactor = d.BreachFactor
	}
	if c.BreachHold <= 0 {
		c.BreachHold = d.BreachHold
	}
	if c.StartupGrace <= 0 {
		c.StartupGrace = d.StartupGrace
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = d.StallTimeout
	}
	if c.ProbeBackoff <= 0 {
		c.ProbeBackoff = d.ProbeBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = d.MaxBackoff
	}
	if c.BackoffStep <= 0 || c.BackoffStep >= 1 {
		c.BackoffStep = d.BackoffStep
	}
	if c.MinCapScale <= 0 {
		c.MinCapScale = d.MinCapScale
	}
	if c.RecoveryHold <= 0 {
		c.RecoveryHold = d.RecoveryHold
	}
	return c
}

// watchdog supervises a run: it watches the measured power against the cap
// and the decision loop's liveness, degrades to the hardware safety floor
// on sustained breach or stall, escalates to cap back-off when even the
// floor fails to hold, and probes for recovery with exponential backoff.
// It implements sim.Ticker and runs after the controller each tick.
//
// The watchdog deliberately reads the same measured (possibly faulted)
// power sensor the software layer uses: a supervisor with oracle access
// would prove nothing about the design.
type watchdog struct {
	w   *world
	cfg WatchdogConfig

	level        DegradeLevel
	prevDegraded DegradeLevel // rung to return to on probe failure

	lastDecision time.Duration
	haveDecision bool
	breaching    bool
	breachSince  time.Duration
	breachTicks  int

	backoff      time.Duration
	probeAt      time.Duration
	probeStarted time.Duration
	wantRestart  bool
	capScale     float64
	panics       int

	events []DegradeEvent
}

func newWatchdog(w *world, cfg WatchdogConfig) *watchdog {
	return &watchdog{w: w, cfg: cfg, backoff: cfg.ProbeBackoff, capScale: 1, prevDegraded: DegradeHardwareOnly}
}

// Period implements sim.Ticker.
func (d *watchdog) Period() time.Duration { return d.cfg.Period }

// Tick implements sim.Ticker: one supervision decision.
func (d *watchdog) Tick(now time.Duration) {
	if now < d.cfg.StartupGrace {
		return
	}
	capW := d.w.capW
	power, n := d.w.powerSensor.Window().FilteredMean(now - d.cfg.Window)
	breach := n >= 3 && power > capW*d.cfg.BreachFactor
	if breach {
		d.breachTicks++
		if !d.breaching {
			d.breaching, d.breachSince = true, now
		}
	} else {
		d.breaching = false
	}
	sustained := d.breaching && now-d.breachSince >= d.cfg.BreachHold

	switch d.level {
	case DegradeNormal:
		// The stall boundary is inclusive, matching the breach hold: a
		// loop silent for exactly StallTimeout is already stalled.
		if d.haveDecision && now-d.lastDecision >= d.cfg.StallTimeout {
			d.degrade(now, "decision loop stalled")
		} else if sustained {
			d.degrade(now, fmt.Sprintf("sustained breach: %.1f W over %.0f W cap", power, capW))
		}
	case DegradeHardwareOnly, DegradeBackoff:
		if sustained {
			// The hardware floor is not holding: the limit register lies.
			// Fight it by programming less than we want.
			d.escalate(now)
		} else if now >= d.probeAt {
			d.prevDegraded = d.level
			d.transition(now, DegradeProbing, "probing recovery")
			d.wantRestart = true
			d.probeStarted = now
			d.lastDecision = now // staleness measured from the probe start
		}
	case DegradeProbing:
		switch {
		case sustained:
			d.probeFailed(now, "probe failed: cap breached")
		case now-d.lastDecision >= d.cfg.StallTimeout:
			d.probeFailed(now, "probe failed: still stalled")
		case !d.wantRestart && now-d.probeStarted >= d.cfg.RecoveryHold:
			d.capScale = 1
			d.backoff = d.cfg.ProbeBackoff
			d.transition(now, DegradeNormal, "recovered")
		}
	}
}

// degrade drops to the hardware safety floor.
func (d *watchdog) degrade(now time.Duration, reason string) {
	d.transition(now, DegradeHardwareOnly, reason)
	d.wantRestart = false
	d.breaching = false
	d.applyFloor(now)
	d.probeAt = now + d.backoff
}

// escalate backs the programmed caps off another step.
func (d *watchdog) escalate(now time.Duration) {
	d.capScale *= d.cfg.BackoffStep
	if d.capScale < d.cfg.MinCapScale {
		d.capScale = d.cfg.MinCapScale
	}
	d.transition(now, DegradeBackoff,
		fmt.Sprintf("floor breached; caps backed off to %.0f%%", d.capScale*100))
	d.breaching = false
	d.applyFloor(now)
	d.probeAt = now + d.backoff
}

// probeFailed re-degrades and doubles the backoff.
func (d *watchdog) probeFailed(now time.Duration, reason string) {
	d.backoff *= 2
	if d.backoff > d.cfg.MaxBackoff {
		d.backoff = d.cfg.MaxBackoff
	}
	d.wantRestart = false
	d.breaching = false
	d.transition(now, d.prevDegraded, reason)
	d.applyFloor(now)
	d.probeAt = now + d.backoff
}

// applyFloor programs the hardware safety floor: the maximum configuration
// (what an unmanaged system runs) under evenly-split, possibly backed-off,
// RAPL caps. On platforms without hardware capping only the configuration
// floor applies — there is nothing better to fall back to.
func (d *watchdog) applyFloor(now time.Duration) {
	maxCfg := machine.MaxConfig(d.w.plat)
	if !d.w.softCfg.Equal(maxCfg) {
		d.w.SetConfig(maxCfg)
	}
	if d.w.noRAPL {
		return
	}
	per := make([]float64, d.w.plat.Sockets)
	for s := range per {
		per[s] = d.w.capW * d.capScale / float64(d.w.plat.Sockets)
	}
	d.w.SetRAPL(per)
}

// transition records a level change.
func (d *watchdog) transition(now time.Duration, to DegradeLevel, reason string) {
	if d.level == to {
		return
	}
	d.events = append(d.events, DegradeEvent{T: now, From: d.level, To: to, Reason: reason})
	d.level = to
}

// allowStep gates the supervised controller: suppressed while degraded,
// restarted (fresh Start, not a resumed Step — the framework's internal
// walk state is stale after suppression) on the first step of a probe.
func (d *watchdog) allowStep(now time.Duration) (run, restart bool) {
	switch d.level {
	case DegradeHardwareOnly, DegradeBackoff:
		return false, false
	case DegradeProbing:
		if d.wantRestart {
			d.wantRestart = false
			return true, true
		}
	}
	return true, false
}

// onDecision marks the decision loop live.
func (d *watchdog) onDecision(now time.Duration) {
	d.lastDecision = now
	d.haveDecision = true
}

// onPanic counts a controller panic; the missed decision surfaces as a
// stall and the ladder takes over.
func (d *watchdog) onPanic(now time.Duration, _ any) { d.panics++ }

// eventsCopy returns the transition log.
func (d *watchdog) eventsCopy() []DegradeEvent {
	return append([]DegradeEvent(nil), d.events...)
}

// breachSeconds converts observed breach ticks to seconds.
func (d *watchdog) breachSeconds() float64 {
	return float64(d.breachTicks) * d.cfg.Period.Seconds()
}

// supervised wraps the real controller with the fault and supervision
// hooks: a stall fault freezes the decision loop; a present watchdog can
// suppress, restart, and panic-protect it. With no faults and no watchdog
// it is a transparent pass-through.
type supervised struct {
	inner core.Controller
	w     *world
	dog   *watchdog
}

// Name implements core.Controller.
func (c *supervised) Name() string { return c.inner.Name() }

// Period implements core.Controller.
func (c *supervised) Period() time.Duration { return c.inner.Period() }

// Start implements core.Controller. Start runs unprotected: a controller
// that cannot boot is a configuration error, not a runtime fault.
func (c *supervised) Start(env core.Env) {
	c.inner.Start(env)
	if c.dog != nil {
		c.dog.onDecision(env.Now())
	}
}

// Step implements core.Controller.
func (c *supervised) Step(env core.Env) {
	now := env.Now()
	if c.w.faults.ControllerStalled(now) {
		return // the decision loop is hung: nothing runs, nothing is recorded
	}
	restart := false
	if c.dog != nil {
		var run bool
		run, restart = c.dog.allowStep(now)
		if !run {
			return
		}
		// With supervision, a panicking decision framework is a runtime
		// fault: swallow it, skip the decision, and let staleness trip the
		// ladder. Without supervision panics propagate as before.
		defer func() {
			if r := recover(); r != nil {
				c.dog.onPanic(now, r)
			}
		}()
	}
	if restart {
		c.inner.Start(env)
	} else {
		c.inner.Step(env)
	}
	if c.dog != nil {
		c.dog.onDecision(now)
	}
}

// faultTicker advances the injector with simulated time and applies
// register-corruption side effects: an onset or repair of a RAPL cap or
// window misprogramming rewrites the affected registers immediately, the
// way real corruption changes behaviour without any software action.
type faultTicker struct{ w *world }

// Period implements sim.Ticker.
func (t *faultTicker) Period() time.Duration { return sensorPeriod }

// Tick implements sim.Ticker.
func (t *faultTicker) Tick(now time.Duration) {
	evs := t.w.faults.Advance(now)
	if len(evs) == 0 {
		return
	}
	for _, ev := range evs {
		switch ev.Scenario.Target {
		case faults.TargetRAPLWindow:
			scale := t.w.faults.WindowScale(now)
			win := time.Duration(float64(t.w.raplWindow) * scale)
			for _, fw := range t.w.firmwares {
				fw.SetWindow(now, win)
			}
		case faults.TargetRAPLCap:
			// Re-program the last requested distribution through the (now
			// active or now repaired) register filter.
			if len(t.w.lastCapReq) > 0 {
				t.w.applyCaps(now, append([]float64(nil), t.w.lastCapReq...))
			}
		}
	}
}
