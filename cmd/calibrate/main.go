// Command calibrate runs Algorithm 2 of the paper on the simulated
// platform: it measures the individual performance and power impact of
// every tunable resource with an embarrassingly parallel calibration
// workload, prints the Table 2 report, and shows the resulting walk order
// (DVFS is always appended last as the fine-grained power tuner).
package main

import (
	"flag"
	"fmt"
	"os"

	"pupil"
	"pupil/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 1, "random visit order for the calibration")
	flag.Parse()

	impacts, err := pupil.Calibrate(nil, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	t := report.NewTable("Resource calibration (Algorithm 2)",
		"Order", "Resource", "Settings", "Max Speedup", "Max Powerup")
	for i, im := range impacts {
		t.AddRow(fmt.Sprintf("%d", i+1), im.Resource, fmt.Sprintf("%d", im.Settings),
			report.F(im.Speedup, 1), report.F(im.Powerup, 1))
	}
	fmt.Println(t.String())
	fmt.Println("The decision framework walks resources in this order, testing each at")
	fmt.Println("its highest setting and fine-tuning with per-resource binary search.")
}
