// Quickstart: enforce a power cap on a single application with each
// technique and compare timeliness (settling) against efficiency
// (steady-state performance) — the tradeoff the paper is about.
package main

import (
	"fmt"
	"log"
	"time"

	"pupil"
)

func main() {
	const (
		benchmark = "x264"
		capWatts  = 140.0
	)
	fmt.Printf("capping %s at %.0f W on %s\n\n", benchmark, capWatts, pupil.DefaultPlatform().Name)

	// The oracle's best configuration bounds what any technique can do.
	opt, ok, err := pupil.Optimal(nil, []pupil.WorkloadSpec{{Benchmark: benchmark}}, capWatts)
	if err != nil || !ok {
		log.Fatalf("optimal search failed: ok=%v err=%v", ok, err)
	}
	fmt.Printf("%-14s %-10s %-12s %-10s %s\n", "technique", "settling", "perf (u/s)", "vs optimal", "steady config")
	fmt.Printf("%-14s %-10s %-12.2f %-10s %v\n", "Optimal", "-", opt.Rate, "1.00", opt.Config)

	for _, tech := range pupil.Techniques() {
		res, err := pupil.Run(pupil.RunSpec{
			Workloads: []pupil.WorkloadSpec{{Benchmark: benchmark}},
			CapWatts:  capWatts,
			Technique: tech,
			Duration:  90 * time.Second,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		settling := "never"
		if res.Settled {
			settling = res.Settling.Round(10 * time.Millisecond).String()
		}
		fmt.Printf("%-14s %-10s %-12.2f %-10.2f %v\n",
			tech, settling, res.SteadyTotal(), res.SteadyTotal()/opt.Rate, res.FinalConfig)
	}

	fmt.Println("\nHardware (RAPL) settles in milliseconds but only manages voltage and")
	fmt.Println("frequency; the software decision framework finds better configurations")
	fmt.Println("(for x264: hyperthreading off) but takes tens of seconds; PUPiL delivers")
	fmt.Println("both: hardware timeliness and software efficiency.")
}
