package cluster

// Fleet fault tolerance: a per-node health state machine layered over the
// budget tree. A naive coordinator assumes every node is healthy, so a
// crashed or wedged node silently keeps its budget share — watts the rest
// of the rack could convert into work (FastCap's fairness argument, and
// the failure class ControlPULP's joint supervision handles). The health
// layer watches what a real coordinator could observe about its members —
// whether the step RPC returned (a crashed/hung node does not step),
// recovered session panics, a demand report frozen bit-identical across
// epochs, demand sustained far above the assigned cap — and walks each
// node through healthy → suspect → quarantined → recovering.
//
// Quarantine reclaims the node's budget down to the safety floor: the
// node is pinned at FloorWatts (enough to keep its firmware reachable for
// probes), its demand contribution to parent-level aggregation is clamped
// to the floor, and the leaf's remaining budget is re-split across its
// healthy members through the ordinary policy + floor normalization — so
// every per-level sum and floor invariant holds by the same induction as
// the healthy path. Recovery probes re-admit the node: after a quarantine
// dwell it is observed at the floor for RecoverEpochs consecutive clean
// epochs, then rejoins the policy split (the next rebalance lifts it);
// each failed probe doubles the dwell up to MaxBackoffEpochs, so a
// flapping node converges to rare probes instead of thrashing the budget.

import (
	"fmt"
	"math"
	"time"
)

// HealthState is a node's position in the fault-tolerance state machine.
type HealthState uint8

// Health states, in escalation order.
const (
	// Healthy nodes participate fully in the policy split.
	Healthy HealthState = iota
	// Suspect nodes showed a bad signal but keep their budget; the streak
	// either clears or escalates to quarantine.
	Suspect
	// Quarantined nodes are pinned at the floor, their reclaimed budget
	// redistributed, waiting out the probe backoff.
	Quarantined
	// Recovering nodes are being probed: still at the floor, re-admitted
	// after RecoverEpochs consecutive clean epochs.
	Recovering
)

// String returns the state's API name.
func (s HealthState) String() string {
	switch s {
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Recovering:
		return "recovering"
	default:
		return "healthy"
	}
}

// HealthConfig enables and tunes fleet health tracking; the zero value of
// every field selects its default. A nil *HealthConfig in Config keeps
// the naive coordinator: no tracking, no quarantine, byte-identical
// behavior to previous releases.
type HealthConfig struct {
	// SuspectEpochs is how many consecutive bad epochs quarantine a node
	// (the first bad epoch marks it suspect). Default 2.
	SuspectEpochs int
	// RecoverEpochs is how many consecutive clean probe epochs re-admit a
	// recovering node. Default 2.
	RecoverEpochs int
	// ProbeAfterEpochs is the initial quarantine dwell before the first
	// recovery probe; each failed probe doubles it. Default 2.
	ProbeAfterEpochs int
	// MaxBackoffEpochs caps the doubling. Default 16.
	MaxBackoffEpochs int
	// OverCapFrac flags an epoch as bad when the node's reported demand
	// exceeds its assigned cap times this factor — a lying demand signal
	// or a capper that lost control. The default 1.5 leaves headroom for
	// the boot-epoch settling transient (a node's first epoch can average
	// ~1.25x its cap while the firmware converges); benched nodes are
	// exempt, since a probe pinned at the floor sits below the machine's
	// idle draw by design.
	OverCapFrac float64
	// StaleEpochs, when positive, flags an epoch as bad once the demand
	// report has been bit-identical for that many consecutive epochs — a
	// wedged reporting path on a node that otherwise steps. Disabled by
	// default (0): this simulation's ground-truth mean power converges
	// bit-exactly at steady state, so frozen-report detection is opt-in
	// for deployments whose demand reports carry measurement noise.
	StaleEpochs int
}

// withDefaults fills unset fields.
func (hc HealthConfig) withDefaults() HealthConfig {
	if hc.SuspectEpochs <= 0 {
		hc.SuspectEpochs = 2
	}
	if hc.RecoverEpochs <= 0 {
		hc.RecoverEpochs = 2
	}
	if hc.ProbeAfterEpochs <= 0 {
		hc.ProbeAfterEpochs = 2
	}
	if hc.MaxBackoffEpochs <= 0 {
		hc.MaxBackoffEpochs = 16
	}
	if hc.OverCapFrac <= 0 {
		hc.OverCapFrac = 1.5
	}
	return hc
}

// HealthEvent records one node's state transition.
type HealthEvent struct {
	T    time.Duration
	Node int
	From HealthState
	To   HealthState
	// Reason names the triggering signal ("step-timeout", "panic",
	// "stale-demand", "over-cap", "probe", "recovered", "cleared").
	Reason string
}

// nodeHealth is one node's runtime tracking state.
type nodeHealth struct {
	state      HealthState
	badStreak  int     // consecutive bad epochs while healthy/suspect
	goodStreak int     // consecutive clean epochs while recovering
	staleRun   int     // consecutive epochs with a bit-identical demand report
	lastDemand float64 // previous epoch's demand report
	dwell      int     // quarantine epochs left before the next probe
	backoff    int     // current probe backoff in epochs
	reclaimed  float64 // watts reclaimed at quarantine (assigned - floor)
}

// benched reports whether node i is pinned at the floor and excluded from
// the policy split (quarantined or still probing).
func (c *Coordinator) benched(i int) bool {
	if c.hcfg == nil {
		return false
	}
	s := c.health[i].state
	return s == Quarantined || s == Recovering
}

// transition logs and applies one state change.
func (c *Coordinator) transition(i int, to HealthState, reason string) {
	h := &c.health[i]
	c.healthEvents = append(c.healthEvents, HealthEvent{
		T: c.now, Node: i, From: h.state, To: to, Reason: reason,
	})
	h.state = to
}

// updateHealth runs the state machine over the epoch that just completed:
// classify each node's observable signals, escalate or clear streaks, and
// account reclaimed watts. Called after demand collection and before the
// rebalance, so a quarantine takes effect in the same epoch's budget
// split.
func (c *Coordinator) updateHealth() {
	hc := *c.hcfg
	for i := range c.health {
		h := &c.health[i]

		// Signal classification from what the coordinator can observe.
		demand := c.demand[i]
		invalid := math.IsNaN(demand) || math.IsInf(demand, 0) || demand < 0
		if invalid {
			// A nonsense report must not poison the policy arithmetic.
			c.demand[i] = 0
			demand = 0
		}
		if demand == h.lastDemand {
			h.staleRun++
		} else {
			h.staleRun = 0
			h.lastDemand = demand
		}
		reason := ""
		switch {
		case c.panicked[i]:
			reason = "panic"
		case !c.stepped[i]:
			reason = "step-timeout"
		case invalid:
			reason = "invalid-demand"
		case demand > c.assigned[i]*hc.OverCapFrac && !c.benched(i):
			// Benched nodes are exempt: a recovery probe pins the node at
			// the floor, below the machine's idle draw, so over-cap there
			// is expected rather than a failure — re-quarantining on it
			// would strand every probed node forever.
			reason = "over-cap"
		case hc.StaleEpochs > 0 && h.staleRun >= hc.StaleEpochs:
			reason = "stale-demand"
		}
		bad := reason != ""

		switch h.state {
		case Healthy, Suspect:
			if !bad {
				h.badStreak = 0
				if h.state == Suspect {
					c.transition(i, Healthy, "cleared")
				}
				break
			}
			h.badStreak++
			if h.state == Healthy {
				c.transition(i, Suspect, reason)
			}
			if h.badStreak >= hc.SuspectEpochs {
				c.transition(i, Quarantined, reason)
				h.reclaimed = c.assigned[i] - c.floor
				if h.reclaimed < 0 {
					h.reclaimed = 0
				}
				h.backoff = hc.ProbeAfterEpochs
				h.dwell = h.backoff
			}
		case Quarantined:
			h.dwell--
			if h.dwell <= 0 {
				c.transition(i, Recovering, "probe")
				h.goodStreak = 0
			}
		case Recovering:
			if bad {
				h.backoff *= 2
				if h.backoff > hc.MaxBackoffEpochs {
					h.backoff = hc.MaxBackoffEpochs
				}
				h.dwell = h.backoff
				c.transition(i, Quarantined, reason)
				break
			}
			h.goodStreak++
			if h.goodStreak >= hc.RecoverEpochs {
				c.transition(i, Healthy, "recovered")
				h.reclaimed = 0
				h.badStreak = 0
			}
		}
	}
}

// HealthEnabled reports whether the coordinator tracks node health.
func (c *Coordinator) HealthEnabled() bool { return c.hcfg != nil }

// NodeHealth returns node i's current health state (Healthy when tracking
// is disabled or i is out of range).
func (c *Coordinator) NodeHealth(i int) HealthState {
	if c.hcfg == nil || i < 0 || i >= len(c.health) {
		return Healthy
	}
	return c.health[i].state
}

// QuarantinedCount reports how many nodes are currently benched
// (quarantined or probing).
func (c *Coordinator) QuarantinedCount() int {
	n := 0
	for i := range c.health {
		if c.benched(i) {
			n++
		}
	}
	return n
}

// ReclaimedWatts sums the budget currently reclaimed from benched nodes:
// each node's assignment at the moment it was quarantined, minus the
// floor it retains. Zero once every node is healthy again.
func (c *Coordinator) ReclaimedWatts() float64 {
	w := 0.0
	for i := range c.health {
		if c.benched(i) {
			w += c.health[i].reclaimed
		}
	}
	return w
}

// HealthEvents returns a copy of the state-transition log.
func (c *Coordinator) HealthEvents() []HealthEvent {
	return append([]HealthEvent(nil), c.healthEvents...)
}

// HealthStates fills dst (growing it as needed) with every node's current
// state and returns it; nil input allocates. Returns nil when health
// tracking is disabled.
func (c *Coordinator) HealthStates(dst []HealthState) []HealthState {
	if c.hcfg == nil {
		return nil
	}
	if cap(dst) < len(c.health) {
		dst = make([]HealthState, len(c.health))
	}
	dst = dst[:len(c.health)]
	for i := range c.health {
		dst[i] = c.health[i].state
	}
	return dst
}

// String renders the event compactly, e.g. "node3 suspect->quarantined
// (step-timeout) @12s".
func (e HealthEvent) String() string {
	return fmt.Sprintf("node%d %s->%s (%s) @%v", e.Node, e.From, e.To, e.Reason, e.T)
}
