package rapl

import (
	"math"
	"testing"
	"time"

	"pupil/internal/machine"
	"pupil/internal/sim"
)

// modelSocket is an obedient single-socket actuator: its power is a smooth
// monotone function of the effective speed the firmware programs, with an
// idle floor the firmware's internal P ~ f^Alpha model does not know about.
// The exponent deliberately differs from the firmware's Alpha so the
// property holds under model mismatch, the regime the paper's firmware
// actually operates in.
type modelSocket struct {
	plat  *machine.Platform
	idleW float64
	spanW float64
	alpha float64
	speed float64 // current effective GHz
}

func newModelSocket(p *machine.Platform) *modelSocket {
	m := &modelSocket{plat: p, idleW: 22, spanW: 95, alpha: 1.8}
	m.speed = m.maxGHz()
	return m
}

func (m *modelSocket) maxGHz() float64 { return m.plat.FreqAt(m.plat.NumFreqSettings() - 1) }

func (m *modelSocket) SocketPower(int) float64 {
	return m.idleW + m.spanW*math.Pow(m.speed/m.maxGHz(), m.alpha)
}

func (m *modelSocket) SetOperatingPoint(_ int, freqIdx int, duty float64) {
	m.speed = m.plat.FreqAt(freqIdx) * duty
}

func (m *modelSocket) maxPower() float64 { return m.idleW + m.spanW }

// floorPower is the power at the lowest operating point the firmware can
// reach; caps below it are unachievable by construction.
func (m *modelSocket) floorPower() float64 {
	s := m.plat.MinGHz() * 0.05
	return m.idleW + m.spanW*math.Pow(s/m.maxGHz(), m.alpha)
}

// TestFirmwareWindowBudgetProperty drives the firmware closed-loop against
// the obedient socket through random cap/window/reprogram sequences and
// asserts the budget-accounting invariant the hardware-vs-software
// comparison rests on: once the estimator has warmed up and the loop has had
// a few windows to settle after each reprogram, the true energy delivered
// over any completed averaging window never exceeds the window's budget
// (cap x window, with slack for the discrete sub-interval actuation), and
// never goes negative.
func TestFirmwareWindowBudgetProperty(t *testing.T) {
	plat := machine.E52690Server()
	for seed := uint64(1); seed <= 12; seed++ {
		rng := sim.NewRNG(seed)
		act := newModelSocket(plat)

		sub := []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond}[rng.Intn(3)]
		window := time.Duration(20+rng.Intn(180)) * time.Millisecond
		if window < 4*sub {
			window = 4 * sub
		}
		cfg := Config{
			Window:      window,
			SubInterval: sub,
			// The budget property is about the control law, not the
			// estimator: noise and bias off so the bound is exact.
			EstimatorBias:  0,
			EstimatorNoise: 0,
			Warmup:         50 * time.Millisecond,
			Alpha:          2.2,
		}
		fw := NewFirmware(plat, 0, act, cfg, rng.Fork("est"))

		// Achievable caps only: between the operating-point floor (with
		// headroom) and full power.
		randomCap := func() float64 {
			lo := act.floorPower() * 1.3
			return lo + rng.Float64()*(act.maxPower()-lo)
		}

		now := time.Duration(0)
		capW := randomCap()
		fw.SetCap(now, capW)
		lastProgram := now
		nextProgram := now + time.Duration(500+rng.Intn(2500))*time.Millisecond

		trueJ := 0.0 // energy delivered in the firmware's current window
		checked := 0 // windows the property was asserted on
		end := 30 * time.Second
		for now < end {
			now += cfg.SubInterval
			if now >= nextProgram {
				// Random reprogram: new cap, sometimes a new window too.
				capW = randomCap()
				fw.SetCap(now, capW)
				if rng.Float64() < 0.3 {
					fw.SetWindow(now, time.Duration(20+rng.Intn(180))*time.Millisecond)
				}
				lastProgram = now
				nextProgram = now + time.Duration(500+rng.Intn(2500))*time.Millisecond
				trueJ = 0
				continue
			}

			// Energy delivered over (now-sub, now] at the operating point
			// chosen by the previous tick; the firmware attributes the same
			// span to its current window before deciding whether to roll it.
			dJ := act.SocketPower(0) * cfg.SubInterval.Seconds()
			trueJ += dJ
			prevStart := fw.windowStart
			fw.Tick(now)

			if fw.usedJ < 0 {
				t.Fatalf("seed %d: internal energy accounting went negative: %v J", seed, fw.usedJ)
			}
			if trueJ < 0 {
				t.Fatalf("seed %d: delivered window energy negative: %v J", seed, trueJ)
			}

			if fw.windowStart != prevStart {
				// A window [prevStart, now] just completed. Judge it only
				// after warmup plus a settling margin past the last
				// reprogram; the slew-limited solve needs a few windows to
				// converge (Fig. 4's ~350 ms settling).
				winLen := now - prevStart
				settled := prevStart >= lastProgram+cfg.Warmup+4*fw.cfg.Window
				if settled {
					budget := capW * winLen.Seconds()
					slack := act.maxPower() * cfg.SubInterval.Seconds()
					if trueJ > budget*1.05+slack {
						t.Fatalf("seed %d: window ending %v used %.3f J over budget %.3f J (cap %.1f W, window %v)",
							seed, now, trueJ, budget, capW, winLen)
					}
					checked++
				}
				trueJ = 0
			}
		}
		if checked < 20 {
			t.Fatalf("seed %d: property asserted on only %d windows — sequence degenerate", seed, checked)
		}
	}
}

// TestFirmwareAccountingInvariants hammers the firmware with fully random
// programming — including unachievable caps, cap removal, window rewrites
// mid-flight, and estimator noise — and asserts the state invariants that
// must hold regardless of whether the cap is meetable: internal window
// energy never negative, the operating point always on the ladder, duty
// within its modulation range, and the averaging window always rolling on
// schedule.
func TestFirmwareAccountingInvariants(t *testing.T) {
	plat := machine.E52690Server()
	for seed := uint64(100); seed < 108; seed++ {
		rng := sim.NewRNG(seed)
		act := newModelSocket(plat)
		cfg := Config{
			Window:         time.Duration(10+rng.Intn(150)) * time.Millisecond,
			SubInterval:    []time.Duration{time.Millisecond, 5 * time.Millisecond}[rng.Intn(2)],
			EstimatorBias:  0.05,
			EstimatorNoise: 0.05,
			Warmup:         time.Duration(rng.Intn(300)) * time.Millisecond,
			Alpha:          2.2,
		}
		fw := NewFirmware(plat, 0, act, cfg, rng.Fork("est"))

		now := time.Duration(0)
		for step := 0; step < 20000; step++ {
			now += cfg.SubInterval
			switch {
			case rng.Float64() < 0.002:
				// Anything from impossible (1 W) to absurd (10 kW), plus
				// explicit disable.
				if rng.Float64() < 0.2 {
					fw.SetCap(now, 0)
				} else {
					fw.SetCap(now, 1+rng.Float64()*10000)
				}
			case rng.Float64() < 0.002:
				// Windows below the sub-interval must clamp, not wedge.
				fw.SetWindow(now, time.Duration(rng.Intn(200))*time.Millisecond)
			}
			fw.Tick(now)

			if fw.usedJ < 0 {
				t.Fatalf("seed %d step %d: window energy negative: %v", seed, step, fw.usedJ)
			}
			idx, duty := fw.OperatingPoint()
			if idx < 0 || idx >= plat.NumFreqSettings() {
				t.Fatalf("seed %d step %d: freq index %d off the ladder", seed, step, idx)
			}
			if duty < 0.05-1e-12 || duty > 1+1e-12 {
				t.Fatalf("seed %d step %d: duty %v outside [0.05, 1]", seed, step, duty)
			}
			if fw.cfg.Window < fw.cfg.SubInterval {
				t.Fatalf("seed %d step %d: window %v below sub-interval %v", seed, step, fw.cfg.Window, fw.cfg.SubInterval)
			}
			if fw.started && now-fw.windowStart > fw.cfg.Window {
				t.Fatalf("seed %d step %d: window never rolled (start %v, now %v, window %v)",
					seed, step, fw.windowStart, now, fw.cfg.Window)
			}
		}
	}
}
