// Package control implements the paper's points of comparison (Section
// 4.4): RAPL-only hardware capping, Soft-DVFS feedback control, the
// offline Soft-Modeling regression approach, and the exhaustive Optimal
// oracle. The decision-framework controllers (Soft-Decision, PUPiL) live in
// package core, since they are the paper's contribution.
package control

import (
	"time"

	"pupil/internal/core"
	"pupil/internal/machine"
)

// RAPLOnly leaves the machine in its default maximal configuration (the
// Linux scheduler spreads threads over all cores, hyperthreads and
// sockets) and programs the hardware capper with an even per-socket split —
// the optimal split when no other resource is managed (Section 5.1). All
// capping work happens in hardware; the only software action after Start is
// re-programming the registers when the cap itself changes (power
// shifting).
type RAPLOnly struct {
	lastCap float64
}

// NewRAPLOnly returns the hardware-only point of comparison.
func NewRAPLOnly() *RAPLOnly { return &RAPLOnly{} }

// Name implements core.Controller.
func (*RAPLOnly) Name() string { return "RAPL" }

// Period implements core.Controller. The period is irrelevant (Step is a
// no-op) but must be positive for the runtime.
func (*RAPLOnly) Period() time.Duration { return time.Second }

// Start implements core.Controller.
func (c *RAPLOnly) Start(env core.Env) {
	env.SetConfig(machine.MaxConfig(env.Platform()))
	c.program(env)
}

// Step implements core.Controller: hardware does everything; software only
// re-programs the registers when the cap changes.
func (c *RAPLOnly) Step(env core.Env) {
	if env.CapWatts() != c.lastCap {
		c.program(env)
	}
}

func (c *RAPLOnly) program(env core.Env) {
	p := env.Platform()
	caps := make([]float64, p.Sockets)
	for s := range caps {
		caps[s] = env.CapWatts() / float64(p.Sockets)
	}
	env.SetRAPL(caps)
	c.lastCap = env.CapWatts()
}
