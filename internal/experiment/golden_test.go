package experiment

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pupil/internal/report"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/experiment -run Golden -update
//
// Regenerated files must be reviewed and committed; the point of the byte
// comparison is that any drift in experiment output — however small — is a
// deliberate, visible decision, not a silent side effect of a hot-path
// rewrite.
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCSV renders a table as its title plus CSV body, the committed
// golden format.
func goldenCSV(t *report.Table) string {
	return fmt.Sprintf("# %s\n%s", t.Title, t.CSV())
}

// checkGolden compares got against testdata/golden/<name> byte for byte,
// or rewrites the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from the committed golden copy.\n--- want\n%s\n--- got\n%s\nIf the change is intended, regenerate with -update and commit the diff.",
			path, want, got)
	}
}

// TestGoldenTable3 pins the quick-config Table 3 byte for byte. The sweep
// behind it is memoized, so alongside the rest of the package's tests this
// costs only the render.
func TestGoldenTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick single-app sweep")
	}
	d, err := SingleAppSweepOpts(context.Background(), quickCfg(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table3_quick.csv", goldenCSV(table3From(d)))
}

// TestGoldenChaosTables pins the three chaos tables (cap-violation time,
// steady performance, supervision ladder) for the quick config.
func TestGoldenChaosTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick chaos grid")
	}
	d, err := ChaosOpts(context.Background(), quickCfg(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tables := tablesChaosFrom(d)
	names := []string{"chaos_breach_quick.csv", "chaos_perf_quick.csv", "chaos_watchdog_quick.csv"}
	if len(tables) != len(names) {
		t.Fatalf("chaos renders %d tables, golden set expects %d", len(tables), len(names))
	}
	for i, tbl := range tables {
		checkGolden(t, names[i], goldenCSV(tbl))
	}
}

// TestGoldenThermalTable pins the quick-config thermal comparison — 2
// techniques x 3 cooling environments, duty-cycle throttle vs headroom
// governor — byte for byte. The table is the PR's acceptance evidence:
// governor columns beat throttle columns wherever the junction binds,
// without exceeding TjMax.
func TestGoldenThermalTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick thermal grid")
	}
	d, err := ThermalOpts(context.Background(), quickCfg(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "thermal_quick.csv", goldenCSV(tableThermalFrom(d)))
}

// TestGoldenHierarchyTable pins the quick-config flat-vs-tree comparison —
// 2 adaptive policies x 3 budget-domain arrangements over the same 8 nodes
// and budget ramp — byte for byte.
func TestGoldenHierarchyTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick hierarchy grid")
	}
	d, err := HierarchyOpts(context.Background(), quickCfg(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "hierarchy_quick.csv", goldenCSV(tableHierarchyFrom(d)))
}

// TestGoldenChaosClusterTable pins the quick-config fleet chaos grid — 2
// adaptive policies x 6 fault profiles x naive/quarantine coordinators at
// 8 nodes — byte for byte. The table is the PR's acceptance evidence: the
// quarantine rows recover the budget the naive rows leave stranded.
func TestGoldenChaosClusterTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick fleet chaos grid")
	}
	d, err := ChaosClusterOpts(context.Background(), quickCfg(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chaoscluster_quick.csv", goldenCSV(tableChaosClusterFrom(d)))
}

// TestGoldenClusterTable pins the quick-config cluster-policy comparison —
// the 3 policies x 3 cluster sizes grid under the budget ramp — byte for
// byte.
func TestGoldenClusterTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick cluster grid")
	}
	d, err := ClusterOpts(context.Background(), quickCfg(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cluster_quick.csv", goldenCSV(tableClusterFrom(d)))
}
