package experiment

import (
	"fmt"
	"time"

	"pupil/internal/control"
	"pupil/internal/machine"
	"pupil/internal/metrics"
	"pupil/internal/report"
	"pupil/internal/system"
	"pupil/internal/workload"
)

// SingleAppData is the shared single-application sweep: every benchmark
// under every cap with every technique, plus the Optimal oracle — the raw
// material of Table 3 and Figures 3, 4, 5 and 7.
type SingleAppData struct {
	Cfg  Config
	Caps []float64
	Apps []string
	// Records indexes technique -> cap -> app.
	Records map[string]map[float64]map[string]Record
	// OptimalRate and OptimalPower index cap -> app.
	OptimalRate  map[float64]map[string]float64
	OptimalPower map[float64]map[string]float64
	// Uncapped holds each app's ground-truth characterization at the max
	// configuration (Fig. 5's GIPS and bandwidth axes).
	Uncapped map[string]system.Eval
}

// singleAppThreads is the paper's single-application thread count: all
// benchmarks run with up to 32 threads, the hardware maximum.
const singleAppThreads = 32

// SingleAppSweep runs (or returns the memoized) single-application grid.
func SingleAppSweep(cfg Config) (*SingleAppData, error) {
	memoMu.Lock()
	if d, ok := singleMemo[cfg]; ok {
		memoMu.Unlock()
		return d, nil
	}
	memoMu.Unlock()

	h, err := newHarness(cfg)
	if err != nil {
		return nil, err
	}
	d := &SingleAppData{
		Cfg:          cfg,
		Caps:         cfg.Caps(),
		Apps:         cfg.Apps(),
		Records:      map[string]map[float64]map[string]Record{},
		OptimalRate:  map[float64]map[string]float64{},
		OptimalPower: map[float64]map[string]float64{},
		Uncapped:     map[string]system.Eval{},
	}

	for _, app := range d.Apps {
		prof, err := workload.ByName(app)
		if err != nil {
			return nil, err
		}
		specs := []workload.Spec{{Profile: prof, Threads: singleAppThreads}}
		apps, err := workload.NewInstances(specs)
		if err != nil {
			return nil, err
		}
		d.Uncapped[app] = system.Evaluate(h.plat, machine.MaxConfig(h.plat), apps, 0)

		for _, capW := range d.Caps {
			optCfg, optEval, ok := control.OptimalSearch(h.plat, apps, capW, control.TotalRate)
			_ = optCfg
			if !ok {
				return nil, fmt.Errorf("experiment: no feasible config for %s at %.0f W", app, capW)
			}
			putF(d.OptimalRate, capW, app, optEval.TotalRate())
			putF(d.OptimalPower, capW, app, optEval.PowerTotal)

			for _, tech := range Techniques() {
				rec, err := h.run(tech, specs, capW, nil,
					seedFor(tech, app, fmt.Sprintf("%.0f", capW)))
				if err != nil {
					return nil, fmt.Errorf("experiment: %s/%s/%.0fW: %w", tech, app, capW, err)
				}
				putR(d.Records, tech, capW, app, rec)
			}
		}
	}

	memoMu.Lock()
	singleMemo[cfg] = d
	memoMu.Unlock()
	return d, nil
}

func putF(m map[float64]map[string]float64, capW float64, app string, v float64) {
	if m[capW] == nil {
		m[capW] = map[string]float64{}
	}
	m[capW][app] = v
}

func putR(m map[string]map[float64]map[string]Record, tech string, capW float64, app string, r Record) {
	if m[tech] == nil {
		m[tech] = map[float64]map[string]Record{}
	}
	if m[tech][capW] == nil {
		m[tech][capW] = map[string]Record{}
	}
	m[tech][capW][app] = r
}

// Normalized returns a technique's steady performance normalized to
// Optimal for one cap and app (the y-axis of Fig. 3).
func (d *SingleAppData) Normalized(tech string, capW float64, app string) float64 {
	opt := d.OptimalRate[capW][app]
	if opt <= 0 {
		return 0
	}
	return d.Records[tech][capW][app].SteadyTotal() / opt
}

// NormalizedEfficiency returns performance-per-Watt normalized to
// Optimal's (the y-axis of Fig. 7).
func (d *SingleAppData) NormalizedEfficiency(tech string, capW float64, app string) float64 {
	rec := d.Records[tech][capW][app]
	opt := d.OptimalRate[capW][app]
	optP := d.OptimalPower[capW][app]
	if opt <= 0 || optP <= 0 || rec.SteadyPower <= 0 {
		return 0
	}
	return (rec.SteadyTotal() / rec.SteadyPower) / (opt / optP)
}

// feasible reports whether a technique has valid data at a cap, matching
// the paper's missing entries: Soft-DVFS cannot reach 60 W (even the lowest
// p-state violates), and Soft-Modeling's 60 W predictions violate the cap
// on ~70% of data points.
func (d *SingleAppData) feasible(tech string, capW float64) bool {
	if capW > 60 {
		return true
	}
	switch tech {
	case TechSoftDVFS:
		// Infeasible when the runs could not settle under the cap.
		settledAll := true
		for _, rec := range d.Records[tech][capW] {
			if !rec.Settled {
				settledAll = false
			}
		}
		return settledAll
	case TechSoftModeling:
		// Excluded when violations dominate.
		viol, n := 0.0, 0
		for _, rec := range d.Records[tech][capW] {
			viol += rec.ViolationFrac
			n++
		}
		return n == 0 || viol/float64(n) < 0.2
	}
	return true
}

// Table3 renders the harmonic-mean normalized performance per cap and
// technique.
func Table3(cfg Config) (*report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 3: Comparison of Harmonic Mean Performance (normalized to optimal)",
		append([]string{"Power Cap"}, Techniques()...)...)
	for _, capW := range d.Caps {
		row := []string{fmt.Sprintf("%.0fW", capW)}
		for _, tech := range Techniques() {
			if !d.feasible(tech, capW) {
				row = append(row, "-")
				continue
			}
			var vals []float64
			for _, app := range d.Apps {
				vals = append(vals, d.Normalized(tech, capW, app))
			}
			row = append(row, report.F(metrics.HarmonicMean(vals), 2))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig3 renders per-application normalized performance, one table per cap.
func Fig3(cfg Config) ([]*report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	var out []*report.Table
	for _, capW := range d.Caps {
		t := report.NewTable(
			fmt.Sprintf("Fig 3 (%0.fW): performance normalized to optimal", capW),
			append([]string{"Benchmark"}, Techniques()...)...)
		for _, app := range append(append([]string{}, d.Apps...), "Harm.Mean") {
			row := []string{app}
			for _, tech := range Techniques() {
				if !d.feasible(tech, capW) {
					row = append(row, "-")
					continue
				}
				if app == "Harm.Mean" {
					var vals []float64
					for _, a := range d.Apps {
						vals = append(vals, d.Normalized(tech, capW, a))
					}
					row = append(row, report.F(metrics.HarmonicMean(vals), 2))
				} else {
					row = append(row, report.F(d.Normalized(tech, capW, app), 2))
				}
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig4Techs lists the techniques with online settling behaviour
// (Soft-Modeling is offline and has no settling time).
func Fig4Techs() []string {
	return []string{TechRAPL, TechSoftDVFS, TechSoftDecision, TechPUPiL}
}

// Fig4 renders settling times (ms) per application at the 140 W cap, plus
// the cross-application average.
func Fig4(cfg Config) (*report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	const capW = 140.0
	t := report.NewTable("Fig 4: Settling time (ms) at the 140W cap",
		append([]string{"Benchmark"}, Fig4Techs()...)...)
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, app := range d.Apps {
		row := []string{app}
		for _, tech := range Fig4Techs() {
			rec := d.Records[tech][capW][app]
			if !rec.Settled {
				row = append(row, "unsettled")
				continue
			}
			ms := float64(rec.Settling) / float64(time.Millisecond)
			row = append(row, report.F(ms, 0))
			sums[tech] += ms
			counts[tech]++
		}
		t.AddRow(row...)
	}
	avg := []string{"Average"}
	for _, tech := range Fig4Techs() {
		if counts[tech] == 0 {
			avg = append(avg, "-")
			continue
		}
		avg = append(avg, report.F(sums[tech]/float64(counts[tech]), 0))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig4Averages returns mean settling in milliseconds per technique, for
// assertions and summaries.
func Fig4Averages(cfg Config) (map[string]float64, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	const capW = 140.0
	out := map[string]float64{}
	for _, tech := range Fig4Techs() {
		sum, n := 0.0, 0
		for _, app := range d.Apps {
			rec := d.Records[tech][capW][app]
			if rec.Settled {
				sum += float64(rec.Settling) / float64(time.Millisecond)
				n++
			}
		}
		if n > 0 {
			out[tech] = sum / float64(n)
		}
	}
	return out, nil
}

// Fig5Row is one benchmark's characterization point.
type Fig5Row struct {
	App      string
	GIPS     float64
	MemBWGBs float64
	// RAPLNearOptimal is true for "blue dot" apps: RAPL within 10% of
	// optimal at the 140 W cap.
	RAPLNearOptimal bool
}

// Fig5 returns the benchmark-characterization scatter data.
func Fig5(cfg Config) ([]Fig5Row, *report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Fig 5: Benchmark characteristics (uncapped, max configuration)",
		"Benchmark", "GIPS", "MemBW GB/s", "RAPL@140W")
	var rows []Fig5Row
	for _, app := range d.Apps {
		ev := d.Uncapped[app]
		near := d.Normalized(TechRAPL, 140, app) >= 0.9
		rows = append(rows, Fig5Row{App: app, GIPS: ev.GIPS, MemBWGBs: ev.MemBWGBs, RAPLNearOptimal: near})
		cls := "poor (>10% from optimal)"
		if near {
			cls = "near-optimal"
		}
		t.AddRow(app, report.F(ev.GIPS, 1), report.F(ev.MemBWGBs, 1), cls)
	}
	return rows, t, nil
}

// Fig7 renders energy efficiency normalized to optimal, one table per cap
// (Soft-Modeling is omitted, as in the paper's figure).
func Fig7(cfg Config) ([]*report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	techs := []string{TechRAPL, TechSoftDVFS, TechSoftDecision, TechPUPiL}
	var out []*report.Table
	for _, capW := range d.Caps {
		t := report.NewTable(
			fmt.Sprintf("Fig 7 (%0.fW): energy efficiency normalized to optimal", capW),
			append([]string{"Benchmark"}, techs...)...)
		for _, app := range append(append([]string{}, d.Apps...), "Harm.Mean") {
			row := []string{app}
			for _, tech := range techs {
				if !d.feasible(tech, capW) {
					row = append(row, "-")
					continue
				}
				if app == "Harm.Mean" {
					var vals []float64
					for _, a := range d.Apps {
						vals = append(vals, d.NormalizedEfficiency(tech, capW, a))
					}
					row = append(row, report.F(metrics.HarmonicMean(vals), 2))
				} else {
					row = append(row, report.F(d.NormalizedEfficiency(tech, capW, app), 2))
				}
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}
