package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Fanout broadcasts values to any number of subscribers, each behind its
// own bounded ring buffer. Publish never blocks: when a subscriber's buffer
// is full its oldest value is evicted to make room, so a slow or stalled
// consumer loses samples instead of stalling the producer — the contract a
// simulation tick loop needs when streaming telemetry to network clients.
type Fanout[T any] struct {
	mu     sync.Mutex
	subs   map[*Subscriber[T]]struct{}
	closed bool

	// total counts drops across every subscriber, surviving Cancel — the
	// exporter's pupil_stream_dropped_total source.
	total atomic.Uint64

	// Rate-limited lagging-consumer warning, installed with SetLagWarn.
	warnMin  time.Duration
	warnFn   func(totalDropped uint64)
	lastWarn time.Time
}

// Subscriber receives published values over a bounded channel.
type Subscriber[T any] struct {
	f       *Fanout[T]
	ch      chan T
	dropped atomic.Uint64
}

// NewFanout returns an empty fan-out.
func NewFanout[T any]() *Fanout[T] {
	return &Fanout[T]{subs: make(map[*Subscriber[T]]struct{})}
}

// Subscribe registers a subscriber buffering at most buffer values
// (minimum 1). Subscribing to a closed fan-out yields a subscriber whose
// channel is already closed.
func (f *Fanout[T]) Subscribe(buffer int) *Subscriber[T] {
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscriber[T]{f: f, ch: make(chan T, buffer)}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		close(sub.ch)
		return sub
	}
	f.subs[sub] = struct{}{}
	return sub
}

// Publish offers v to every subscriber without blocking. A subscriber
// whose buffer is full has its oldest value dropped (and its drop counter
// incremented) to make room. Publishing to a closed fan-out is a no-op.
func (f *Fanout[T]) Publish(v T) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for sub := range f.subs {
		sub.offer(v)
	}
}

func (sub *Subscriber[T]) offer(v T) {
	select {
	case sub.ch <- v:
		return
	default:
	}
	// Full: evict the oldest, then retry once. A concurrent receiver may
	// have drained the channel in between, in which case the eviction
	// select falls through and the send succeeds.
	select {
	case <-sub.ch:
		sub.dropped.Add(1)
		sub.f.noteDrop()
	default:
	}
	select {
	case sub.ch <- v:
	default:
		sub.dropped.Add(1)
		sub.f.noteDrop()
	}
}

// noteDrop accounts one lost value and fires the lag warning at most once
// per warnMin. Called with f.mu held (offer only runs under Publish).
func (f *Fanout[T]) noteDrop() {
	n := f.total.Add(1)
	if f.warnFn == nil {
		return
	}
	now := time.Now()
	if now.Sub(f.lastWarn) < f.warnMin {
		return
	}
	f.lastWarn = now
	f.warnFn(n)
}

// TotalDropped reports values lost across every subscriber this fan-out
// ever had, including cancelled ones.
func (f *Fanout[T]) TotalDropped() uint64 { return f.total.Load() }

// SetLagWarn installs a callback fired (at most once per min) when a
// subscriber falls behind and loses a value; it receives the lifetime
// drop total. The callback runs on the publisher's goroutine under the
// fan-out lock and must not call back into the fan-out or block.
func (f *Fanout[T]) SetLagWarn(min time.Duration, fn func(totalDropped uint64)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.warnMin = min
	f.warnFn = fn
}

// Subscribers reports the number of active subscribers.
func (f *Fanout[T]) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// Close closes every subscriber channel (after any buffered values are
// received) and marks the fan-out closed. Close is idempotent.
func (f *Fanout[T]) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for sub := range f.subs {
		close(sub.ch)
		delete(f.subs, sub)
	}
}

// C is the subscriber's receive channel; it is closed when the fan-out is
// closed or the subscription cancelled.
func (sub *Subscriber[T]) C() <-chan T { return sub.ch }

// Dropped reports how many values this subscriber has lost to a full
// buffer.
func (sub *Subscriber[T]) Dropped() uint64 { return sub.dropped.Load() }

// Cancel removes the subscriber from its fan-out and closes its channel.
// Cancelling twice, or after the fan-out closed, is a no-op.
func (sub *Subscriber[T]) Cancel() {
	sub.f.mu.Lock()
	defer sub.f.mu.Unlock()
	if _, ok := sub.f.subs[sub]; !ok {
		return
	}
	delete(sub.f.subs, sub)
	close(sub.ch)
}
