package experiment

import (
	"context"
	"reflect"
	"testing"
)

// thermalRec is shorthand for one quick-grid thermal cell.
func thermalRec(t *testing.T, d *ThermalData, tech, env, mode string) ThermalRecord {
	t.Helper()
	r, ok := d.Records[tech][env][mode]
	if !ok {
		t.Fatalf("thermal grid missing %s/%s/%s", tech, env, mode)
	}
	return r
}

// TestThermalGovernorWinsWhenBound is the acceptance criterion of the
// thermal campaign: wherever the junction (not the cap) is the binding
// constraint, the pre-emptive headroom governor delivers strictly more
// steady performance than the package's reactive duty-cycle throttle,
// while holding the junction at or below the trip point.
func TestThermalGovernorWinsWhenBound(t *testing.T) {
	d, err := Thermal(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tableThermalFrom(d).String())

	const tjMax = 95.0
	for _, tech := range d.Techniques {
		for _, env := range []string{"hot-aisle", "choked-airflow"} {
			th := thermalRec(t, d, tech, env, modeThrottle)
			gov := thermalRec(t, d, tech, env, modeGovernor)
			if th.ThrottleFrac < 0.05 {
				t.Errorf("%s/%s: duty throttle engaged only %.1f%% of the run; the environment should be thermally binding",
					tech, env, th.ThrottleFrac*100)
			}
			if gov.MeanPerf <= th.MeanPerf {
				t.Errorf("%s/%s: governor perf %.2f should beat duty-cycle %.2f",
					tech, env, gov.MeanPerf, th.MeanPerf)
			}
			if gov.MaxTempC > tjMax+0.5 {
				t.Errorf("%s/%s: governed junction peaked at %.2f C, want <= TjMax %.0f + 0.5",
					tech, env, gov.MaxTempC, tjMax)
			}
			if gov.GovernedFrac == 0 {
				t.Errorf("%s/%s: governor never engaged in a thermally bound environment", tech, env)
			}
		}
	}
}

// TestThermalCapStillEnforced: thermal protection composes with power
// capping — leakage and throttling never become a path around the RAPL
// cap in any cell.
func TestThermalCapStillEnforced(t *testing.T) {
	d, err := Thermal(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range d.Techniques {
		for _, env := range d.Envs {
			for _, mode := range d.Modes {
				if b := thermalRec(t, d, tech, env, mode).BreachSeconds; b > 0.5 {
					t.Errorf("%s/%s/%s spent %.2f s above the cap", tech, env, mode, b)
				}
			}
		}
	}
}

// TestThermalMiniGridExplicitSelection exercises runThermal's cut-down
// selection path (the one CI runs under -race in short mode): one
// technique in the hot aisle, both protection modes, bypassing the memo.
func TestThermalMiniGridExplicitSelection(t *testing.T) {
	cfg := quickCfg()
	envs := thermalEnvs()[1:2] // hot-aisle
	d, err := runThermal(context.Background(), cfg, RunOpts{Parallel: 2}, []string{TechRAPL}, envs)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Techniques) != 1 || len(d.Envs) != 1 || len(d.Modes) != 2 {
		t.Fatalf("mini grid = %d techniques x %d envs x %d modes", len(d.Techniques), len(d.Envs), len(d.Modes))
	}
	th := thermalRec(t, d, TechRAPL, "hot-aisle", modeThrottle)
	gov := thermalRec(t, d, TechRAPL, "hot-aisle", modeGovernor)
	if gov.MeanPerf <= th.MeanPerf {
		t.Errorf("mini grid: governor perf %.2f should beat duty-cycle %.2f", gov.MeanPerf, th.MeanPerf)
	}
}

// TestThermalDeterministicAcrossParallelism: the thermal grid must be
// byte-identical whether cells run one at a time or eight at a time.
func TestThermalDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full quick thermal grids")
	}
	ctx := context.Background()
	cfg := quickCfg()
	seq, err := runThermal(ctx, cfg, RunOpts{Parallel: 1}, thermalTechniques(), thermalEnvs())
	if err != nil {
		t.Fatal(err)
	}
	par, err := runThermal(ctx, cfg, RunOpts{Parallel: 8}, thermalTechniques(), thermalEnvs())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("ThermalData differs between parallel=1 and parallel=8")
	}
	if a, b := tableThermalFrom(seq).String(), tableThermalFrom(par).String(); a != b {
		t.Errorf("rendered thermal table differs between parallel=1 and parallel=8:\n--- parallel=1\n%s\n--- parallel=8\n%s", a, b)
	}
}

// TestThermalMemoized documents the memo contract for the thermal grid.
func TestThermalMemoized(t *testing.T) {
	a, err := Thermal(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Thermal(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same-config thermal grids were not memoized")
	}
}
