package workload

import "fmt"

// Mix is a named multi-application workload (Table 4 of the paper): four
// benchmarks launched together.
type Mix struct {
	Name  string
	Names []string
}

// mixes reproduces Table 4 exactly. Mixes 1-4 draw only from applications
// for which RAPL is near-optimal, mixes 5-8 only from applications for
// which RAPL is more than 10% from optimal, and mixes 9-12 take two from
// each set.
var mixes = []Mix{
	{"mix1", []string{"jacobi", "swaptions", "bfs", "particlefilter"}},
	{"mix2", []string{"cfd", "bfs", "fluidanimate", "jacobi"}},
	{"mix3", []string{"blackscholes", "cfd", "jacobi", "fluidanimate"}},
	{"mix4", []string{"particlefilter", "blackscholes", "swaptions", "btree"}},
	{"mix5", []string{"x264", "dijkstra", "vips", "HOP"}},
	{"mix6", []string{"STREAM", "kmeans_fuzzy", "HOP", "dijkstra"}},
	{"mix7", []string{"STREAM", "kmeans", "vips", "HOP"}},
	{"mix8", []string{"kmeans", "dijkstra", "x264", "STREAM"}},
	{"mix9", []string{"jacobi", "swaptions", "kmeans_fuzzy", "vips"}},
	{"mix10", []string{"cfd", "bfs", "x264", "HOP"}},
	{"mix11", []string{"jacobi", "blackscholes", "dijkstra", "kmeans_fuzzy"}},
	{"mix12", []string{"btree", "particlefilter", "kmeans", "STREAM"}},
}

// Mixes returns the 12 multi-application workloads of Table 4.
func Mixes() []Mix {
	out := make([]Mix, len(mixes))
	copy(out, mixes)
	return out
}

// MixByName returns the named mix.
func MixByName(name string) (Mix, error) {
	for _, m := range mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// Profiles resolves the mix's benchmark names to their profiles.
func (m Mix) Profiles() ([]Profile, error) {
	out := make([]Profile, 0, len(m.Names))
	for _, n := range m.Names {
		p, err := ByName(n)
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", m.Name, err)
		}
		out = append(out, p)
	}
	return out, nil
}
