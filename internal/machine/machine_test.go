package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestE52690Validates(t *testing.T) {
	p := E52690Server()
	if err := p.Validate(); err != nil {
		t.Fatalf("reference platform invalid: %v", err)
	}
}

func TestReferenceTopologyMatchesTable1(t *testing.T) {
	p := E52690Server()
	if got := p.HWThreads(); got != 32 {
		t.Errorf("HWThreads = %d, want 32", got)
	}
	if got := p.NumFreqSettings(); got != 16 {
		t.Errorf("NumFreqSettings = %d, want 16 (15 p-states + turbo)", got)
	}
	if got := p.NumConfigurations(); got != 1024 {
		t.Errorf("NumConfigurations = %d, want 1024", got)
	}
	if p.MinGHz() != 1.2 {
		t.Errorf("MinGHz = %g, want 1.2", p.MinGHz())
	}
	if math.Abs(p.BaseGHz()-2.9) > 1e-9 {
		t.Errorf("BaseGHz = %g, want 2.9", p.BaseGHz())
	}
	if p.SocketTDP != 135 {
		t.Errorf("SocketTDP = %g, want 135", p.SocketTDP)
	}
}

func TestValidateRejectsBrokenPlatforms(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Platform)
	}{
		{"no sockets", func(p *Platform) { p.Sockets = 0 }},
		{"no cores", func(p *Platform) { p.CoresPerSocket = 0 }},
		{"no threads", func(p *Platform) { p.ThreadsPerCore = 0 }},
		{"no memctls", func(p *Platform) { p.MemCtls = 0 }},
		{"no p-states", func(p *Platform) { p.FreqsGHz = nil }},
		{"unsorted p-states", func(p *Platform) { p.FreqsGHz = []float64{2.0, 1.2} }},
		{"turbo below top p-state", func(p *Platform) { p.TurboGHz = 2.0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := E52690Server()
			c.mut(p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate accepted broken platform (%s)", c.name)
			}
		})
	}
}

func TestFreqAtOrderingAndClamping(t *testing.T) {
	p := E52690Server()
	prev := 0.0
	for i := 0; i < p.NumFreqSettings(); i++ {
		f := p.FreqAt(i)
		if f <= prev {
			t.Fatalf("FreqAt(%d) = %g not strictly above FreqAt(%d) = %g", i, f, i-1, prev)
		}
		prev = f
	}
	if p.FreqAt(p.NumFreqSettings()-1) != p.TurboGHz {
		t.Errorf("top setting = %g, want turbo %g", p.FreqAt(p.NumFreqSettings()-1), p.TurboGHz)
	}
	if p.FreqAt(-5) != p.MinGHz() {
		t.Errorf("negative index should clamp to MinGHz")
	}
	if p.FreqAt(99) != p.TurboGHz {
		t.Errorf("oversized index should clamp to top setting")
	}
}

func TestVoltageMonotoneInFrequency(t *testing.T) {
	p := E52690Server()
	prev := 0.0
	for i := 0; i < p.NumFreqSettings(); i++ {
		v := p.VoltAt(p.FreqAt(i))
		if v <= prev {
			t.Fatalf("voltage not increasing: V(%g GHz) = %g after %g", p.FreqAt(i), v, prev)
		}
		prev = v
	}
}

func TestCoreDynPowerConvexInFrequency(t *testing.T) {
	p := E52690Server()
	// P = C V(f)^2 f must grow faster than linearly in f: doubling
	// frequency more than doubles power.
	lo := p.CoreDynPower(1.2)
	hi := p.CoreDynPower(2.4)
	if hi <= 2*lo {
		t.Errorf("dynamic power not superlinear: P(2.4)=%g <= 2*P(1.2)=%g", hi, 2*lo)
	}
}

func TestMinimalAndMaxConfig(t *testing.T) {
	p := E52690Server()
	min := MinimalConfig(p)
	if min.TotalCores() != 1 || min.HT || min.MemCtls != 1 || min.Freq[0] != 0 {
		t.Errorf("MinimalConfig = %v, want 1 core, no HT, 1 mc, lowest speed", min)
	}
	max := MaxConfig(p)
	if max.HWThreads() != 32 {
		t.Errorf("MaxConfig HWThreads = %d, want 32", max.HWThreads())
	}
	if got := max.EffectiveGHz(p, 0); got != p.TurboGHz {
		t.Errorf("MaxConfig socket 0 freq = %g, want turbo %g", got, p.TurboGHz)
	}
}

func TestConfigNormalizeClamps(t *testing.T) {
	p := E52690Server()
	c := Config{Cores: 99, Sockets: -1, MemCtls: 7, HT: true}
	n := c.Normalize(p)
	if n.Cores != p.CoresPerSocket || n.Sockets != 1 || n.MemCtls != p.MemCtls {
		t.Errorf("Normalize = %+v, want clamped fields", n)
	}
	if len(n.Freq) != p.Sockets || len(n.Duty) != p.Sockets {
		t.Errorf("Normalize did not fill per-socket slices: %+v", n)
	}
	for _, d := range n.Duty {
		if d <= 0 || d > 1 {
			t.Errorf("Normalize produced duty %g outside (0,1]", d)
		}
	}
}

func TestConfigCloneIsDeep(t *testing.T) {
	p := E52690Server()
	a := MaxConfig(p)
	b := a.Clone()
	b.Freq[0] = 0
	b.Duty[1] = 0.5
	if a.Freq[0] == 0 || a.Duty[1] == 0.5 {
		t.Errorf("Clone shares slice storage with original")
	}
}

func TestConfigEqual(t *testing.T) {
	p := E52690Server()
	a, b := MaxConfig(p), MaxConfig(p)
	if !a.Equal(b) {
		t.Errorf("identical configs not Equal")
	}
	b.Freq[1] = 3
	if a.Equal(b) {
		t.Errorf("configs with different per-socket speed reported Equal")
	}
}

func TestEnumerateCountsFullSpace(t *testing.T) {
	p := E52690Server()
	n := 0
	Enumerate(p, func(Config) bool { n++; return true })
	if n != p.NumConfigurations() {
		t.Errorf("Enumerate visited %d configs, want %d", n, p.NumConfigurations())
	}
}

func TestEnumerateStopsEarly(t *testing.T) {
	p := E52690Server()
	n := 0
	Enumerate(p, func(Config) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("Enumerate visited %d configs after early stop, want 10", n)
	}
}

func TestEnumerateConfigsAreValidProperty(t *testing.T) {
	p := E52690Server()
	Enumerate(p, func(c Config) bool {
		norm := c.Normalize(p)
		if !c.Equal(norm) {
			t.Fatalf("enumerated config %v differs from its normalization %v", c, norm)
		}
		return true
	})
}

func TestPowerMonotoneInFrequencyProperty(t *testing.T) {
	p := E52690Server()
	full := func(c Config) []SocketLoad {
		loads := make([]SocketLoad, p.Sockets)
		for s := range loads {
			loads[s] = SocketLoad{BusyCores: float64(c.ActiveCores(s)), HTShare: 1}
		}
		return loads
	}
	f := func(coresRaw, freqRaw uint8) bool {
		cores := int(coresRaw)%p.CoresPerSocket + 1
		fi := int(freqRaw) % (p.NumFreqSettings() - 1)
		lo := Config{Cores: cores, Sockets: 2, HT: true, MemCtls: 2}.Normalize(p)
		for s := range lo.Freq {
			lo.Freq[s] = fi
		}
		hi := lo.Clone()
		for s := range hi.Freq {
			hi.Freq[s] = fi + 1
		}
		pl, _ := p.Power(lo, full(lo))
		ph, _ := p.Power(hi, full(hi))
		return ph > pl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerMonotoneInCoresProperty(t *testing.T) {
	p := E52690Server()
	f := func(coresRaw uint8, ht bool) bool {
		cores := int(coresRaw)%(p.CoresPerSocket-1) + 1
		mk := func(n int) (Config, []SocketLoad) {
			c := Config{Cores: n, Sockets: 2, HT: ht, MemCtls: 2}.Normalize(p)
			loads := make([]SocketLoad, p.Sockets)
			for s := range loads {
				loads[s] = SocketLoad{BusyCores: float64(n)}
			}
			return c, loads
		}
		cl, ll := mk(cores)
		ch, lh := mk(cores + 1)
		pl, _ := p.Power(cl, ll)
		ph, _ := p.Power(ch, lh)
		return ph > pl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSocketPowerRespectsTDP(t *testing.T) {
	p := E52690Server()
	c := MaxConfig(p)
	w := p.SocketPower(c, 0, SocketLoad{BusyCores: 8, HTShare: 1, BWGBs: 100})
	if w > p.SocketTDP {
		t.Errorf("socket power %g exceeds TDP %g", w, p.SocketTDP)
	}
}

func TestParkedSocketDrawsParkedPower(t *testing.T) {
	p := E52690Server()
	c := Config{Cores: 4, Sockets: 1, MemCtls: 1}.Normalize(p)
	if got := p.SocketPower(c, 1, SocketLoad{BusyCores: 8}); got != p.SocketParked {
		t.Errorf("parked socket power = %g, want %g", got, p.SocketParked)
	}
}

// TestSixtyWattCapInfeasibleForDVFSOnly checks the property behind the
// paper's missing Soft-DVFS data at 60 W: with all cores and hyperthreads
// active, even the lowest p-state exceeds a 60 W machine-wide cap.
func TestSixtyWattCapInfeasibleForDVFSOnly(t *testing.T) {
	p := E52690Server()
	c := MaxConfig(p)
	for s := range c.Freq {
		c.Freq[s] = 0
	}
	loads := make([]SocketLoad, p.Sockets)
	for s := range loads {
		loads[s] = SocketLoad{BusyCores: 8, HTShare: 1, StallFrac: 0.3, BWGBs: 20}
	}
	total, _ := p.Power(c, loads)
	if total <= 60 {
		t.Errorf("lowest p-state with 32 busy threads draws %.1f W, want > 60 W", total)
	}
}

// TestFullTiltUnderTwiceTDP checks the upper end of the calibration: the
// machine flat out draws well under 2x135 W (the paper notes sustaining TDP
// is extremely rare) yet above the largest evaluated cap of 220 W.
func TestFullTiltPowerEnvelope(t *testing.T) {
	p := E52690Server()
	c := MaxConfig(p)
	loads := make([]SocketLoad, p.Sockets)
	for s := range loads {
		loads[s] = SocketLoad{BusyCores: 8, HTShare: 1, StallFrac: 0.1, BWGBs: 30}
	}
	total, _ := p.Power(c, loads)
	if total <= 220 {
		t.Errorf("full-tilt power %.1f W should exceed the 220 W cap", total)
	}
	if total >= 270 {
		t.Errorf("full-tilt power %.1f W implausibly high for this platform", total)
	}
}

func TestIdlePowerBelowBusyPower(t *testing.T) {
	p := E52690Server()
	c := MaxConfig(p)
	idle := p.IdlePower(c)
	loads := make([]SocketLoad, p.Sockets)
	for s := range loads {
		loads[s] = SocketLoad{BusyCores: 8}
	}
	busy, _ := p.Power(c, loads)
	if idle >= busy {
		t.Errorf("idle power %g not below busy power %g", idle, busy)
	}
}

func TestStallPowerReducesDynamicPower(t *testing.T) {
	p := E52690Server()
	c := MaxConfig(p)
	active := p.SocketPower(c, 0, SocketLoad{BusyCores: 8})
	stalled := p.SocketPower(c, 0, SocketLoad{BusyCores: 8, StallFrac: 1})
	if stalled >= active {
		t.Errorf("fully stalled socket %g W should draw less than active %g W", stalled, active)
	}
	if stalled <= p.UncoreActive {
		t.Errorf("stalled socket %g W should still burn dynamic power above uncore %g W", stalled, p.UncoreActive)
	}
}

func TestDutyCycleReducesPower(t *testing.T) {
	p := E52690Server()
	c := MaxConfig(p)
	loads := []SocketLoad{{BusyCores: 8, HTShare: 1}, {BusyCores: 8, HTShare: 1}}
	full, _ := p.Power(c, loads)
	c.Duty[0], c.Duty[1] = 0.5, 0.5
	halved, _ := p.Power(c, loads)
	if halved >= full {
		t.Errorf("duty-cycled power %g not below full power %g", halved, full)
	}
}

func TestMeanGHzWeightsActiveSockets(t *testing.T) {
	p := E52690Server()
	c := Config{Cores: 4, Sockets: 2, MemCtls: 2}.Normalize(p)
	c.Freq[0], c.Freq[1] = 0, p.NumFreqSettings()-1
	want := (p.MinGHz() + p.TurboGHz) / 2
	if got := c.MeanGHz(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanGHz = %g, want %g", got, want)
	}
}

// TestMobileSoCDarkSilicon checks the platform of the paper's motivating
// example: peak power roughly double a sustainable cap.
func TestMobileSoCDarkSilicon(t *testing.T) {
	p := MobileSoC()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	c := MaxConfig(p)
	loads := []SocketLoad{{BusyCores: 4, BWGBs: 4}}
	peak, _ := p.Power(c, loads)
	if peak < 4.5 || peak > 5.5 {
		t.Errorf("mobile SoC peak %.2f W, want ~5 W (Exynos 5 class)", peak)
	}
	const sustainable = 2.8
	if peak < 1.7*sustainable {
		t.Errorf("peak %.2f W should be nearly 2x the sustainable %.1f W (dark silicon)", peak, sustainable)
	}
}

// TestBlendEndpointsAndMonotonicity: Blend models partial actuation — the
// endpoints return clones of the inputs, and intermediate fractions land
// strictly between distinct configurations.
func TestBlendEndpoints(t *testing.T) {
	p := E52690Server()
	cur, want := MinimalConfig(p), MaxConfig(p)

	if got := Blend(cur, want, 0); !got.Equal(cur) {
		t.Errorf("Blend(0) = %v, want cur", got)
	}
	if got := Blend(cur, want, -1); !got.Equal(cur) {
		t.Errorf("Blend(-1) = %v, want cur", got)
	}
	if got := Blend(cur, want, 1); !got.Equal(want) {
		t.Errorf("Blend(1) = %v, want want", got)
	}
	if got := Blend(cur, want, 2); !got.Equal(want) {
		t.Errorf("Blend(2) = %v, want want", got)
	}

	// Endpoint results are clones, not aliases.
	got := Blend(cur, want, 0)
	got.Freq[0] = 99
	if cur.Freq[0] == 99 {
		t.Error("Blend(0) aliased cur's Freq slice")
	}
}

func TestBlendMidpoint(t *testing.T) {
	p := E52690Server()
	cur, want := MinimalConfig(p), MaxConfig(p)
	mid := Blend(cur, want, 0.5)
	if mid.Equal(cur) || mid.Equal(want) {
		t.Fatalf("Blend(0.5) = %v degenerated to an endpoint", mid)
	}
	if mid.Cores <= cur.Cores || mid.Cores >= want.Cores {
		t.Errorf("mid Cores = %d not between %d and %d", mid.Cores, cur.Cores, want.Cores)
	}
	if mid.HT != want.HT {
		t.Errorf("HT at frac 0.5 = %v, want the target's %v", mid.HT, want.HT)
	}
	if low := Blend(cur, want, 0.25); low.HT != cur.HT {
		t.Errorf("HT at frac 0.25 = %v, want cur's %v", low.HT, cur.HT)
	}
	for s := range mid.Freq {
		if mid.Freq[s] < cur.Freq[s] || mid.Freq[s] > want.Freq[s] {
			t.Errorf("mid Freq[%d] = %d outside [%d, %d]", s, mid.Freq[s], cur.Freq[s], want.Freq[s])
		}
	}
	for s := range mid.Duty {
		lo, hi := cur.Duty[s], want.Duty[s]
		if lo > hi {
			lo, hi = hi, lo
		}
		if mid.Duty[s] < lo || mid.Duty[s] > hi {
			t.Errorf("mid Duty[%d] = %g outside [%g, %g]", s, mid.Duty[s], lo, hi)
		}
	}
}

// TestBlendRoundsTowardCur: integer fields truncate toward the current
// configuration, modeling the not-yet-migrated remainder.
func TestBlendRoundsTowardCur(t *testing.T) {
	p := E52690Server()
	cur := MinimalConfig(p) // 1 core
	want := cur.Clone()
	want.Cores = 2
	if got := Blend(cur, want, 0.49); got.Cores != 1 {
		t.Errorf("Blend(0.49) Cores = %d, want 1 (rounds toward cur)", got.Cores)
	}
}
