package experiment

import (
	"context"
	"fmt"
	"time"

	"pupil/internal/control"
	"pupil/internal/machine"
	"pupil/internal/metrics"
	"pupil/internal/report"
	"pupil/internal/sweep"
	"pupil/internal/system"
)

// SingleAppData is the shared single-application sweep: every benchmark
// under every cap with every technique, plus the Optimal oracle — the raw
// material of Table 3 and Figures 3, 4, 5 and 7.
type SingleAppData struct {
	Cfg  Config
	Caps []float64
	Apps []string
	// Records indexes technique -> cap -> app.
	Records map[string]map[float64]map[string]Record
	// OptimalRate and OptimalPower index cap -> app.
	OptimalRate  map[float64]map[string]float64
	OptimalPower map[float64]map[string]float64
	// OptimalConfig indexes cap -> app: the oracle's winning resource
	// configuration per cell (the ground truth behind Fig. 5-style
	// analyses of where hardware-only capping leaves performance behind).
	OptimalConfig map[float64]map[string]machine.Config
	// Uncapped holds each app's ground-truth characterization at the max
	// configuration (Fig. 5's GIPS and bandwidth axes).
	Uncapped map[string]system.Eval
}

// Clone returns a deep copy that the caller owns and may mutate freely —
// the escape hatch from the shared read-only contract of SingleAppSweep.
func (d *SingleAppData) Clone() *SingleAppData {
	out := &SingleAppData{
		Cfg:           d.Cfg,
		Caps:          append([]float64(nil), d.Caps...),
		Apps:          append([]string(nil), d.Apps...),
		Records:       map[string]map[float64]map[string]Record{},
		OptimalRate:   map[float64]map[string]float64{},
		OptimalPower:  map[float64]map[string]float64{},
		OptimalConfig: map[float64]map[string]machine.Config{},
		Uncapped:      map[string]system.Eval{},
	}
	for tech, byCap := range d.Records {
		for capW, byApp := range byCap {
			for app, rec := range byApp {
				putR(out.Records, tech, capW, app, rec.clone())
			}
		}
	}
	for capW, byApp := range d.OptimalRate {
		for app, v := range byApp {
			putF(out.OptimalRate, capW, app, v)
		}
	}
	for capW, byApp := range d.OptimalPower {
		for app, v := range byApp {
			putF(out.OptimalPower, capW, app, v)
		}
	}
	for capW, byApp := range d.OptimalConfig {
		for app, cfg := range byApp {
			putC(out.OptimalConfig, capW, app, cfg.Clone())
		}
	}
	for app, ev := range d.Uncapped {
		out.Uncapped[app] = cloneEval(ev)
	}
	return out
}

// singleAppThreads is the paper's single-application thread count: all
// benchmarks run with up to 32 threads, the hardware maximum.
const singleAppThreads = 32

// SingleAppSweep runs (or returns the memoized) single-application grid
// with default execution options. See SingleAppSweepOpts for the sharing
// contract on the returned data.
func SingleAppSweep(cfg Config) (*SingleAppData, error) {
	return SingleAppSweepOpts(context.Background(), cfg, RunOpts{})
}

// SingleAppSweepOpts runs (or returns the memoized) single-application grid
// on a bounded worker pool.
//
// The returned *SingleAppData is shared: every caller with the same Config
// receives the same instance, so it must be treated as read-only. Callers
// that need to mutate the data must work on a Clone. Results are identical
// for a given Config at any parallelism.
func SingleAppSweepOpts(ctx context.Context, cfg Config, opts RunOpts) (*SingleAppData, error) {
	memoMu.Lock()
	if d, ok := singleMemo[cfg]; ok {
		memoMu.Unlock()
		return d, nil
	}
	memoMu.Unlock()

	d, err := runSingleAppSweep(ctx, cfg, opts)
	if err != nil {
		return nil, err
	}

	memoMu.Lock()
	defer memoMu.Unlock()
	// A concurrent caller may have completed the same sweep; keep the
	// first-stored instance so repeated calls keep returning one pointer.
	if prev, ok := singleMemo[cfg]; ok {
		return prev, nil
	}
	singleMemo[cfg] = d
	return d, nil
}

// runSingleAppSweep always executes the grid (no memo): one cell per
// benchmark characterization, one per Optimal oracle search, and one per
// technique run — assembled in cell order so the result is independent of
// scheduling.
func runSingleAppSweep(ctx context.Context, cfg Config, opts RunOpts) (*SingleAppData, error) {
	h, err := newHarness(cfg)
	if err != nil {
		return nil, err
	}
	d := &SingleAppData{
		Cfg:           cfg,
		Caps:          cfg.Caps(),
		Apps:          cfg.Apps(),
		Records:       map[string]map[float64]map[string]Record{},
		OptimalRate:   map[float64]map[string]float64{},
		OptimalPower:  map[float64]map[string]float64{},
		OptimalConfig: map[float64]map[string]machine.Config{},
		Uncapped:      map[string]system.Eval{},
	}

	// A cell yields exactly one of: an uncapped characterization, an
	// oracle result, or a technique record; assembly below consumes them
	// positionally.
	type cellOut struct {
		rec     Record
		optCfg  machine.Config
		optRate float64
		optPow  float64
		eval    system.Eval
	}
	var cells []sweep.Cell[cellOut]
	for _, app := range d.Apps {
		app := app
		cells = append(cells, sweep.Cell[cellOut]{
			Label: "uncapped/" + app,
			Run: func(ctx context.Context) (cellOut, error) {
				_, apps, err := h.instances(app, singleAppThreads)
				if err != nil {
					return cellOut{}, err
				}
				return cellOut{eval: system.Evaluate(h.plat, machine.MaxConfig(h.plat), apps, 0)}, nil
			},
		})
		for _, capW := range d.Caps {
			capW := capW
			cells = append(cells, sweep.Cell[cellOut]{
				Label: fmt.Sprintf("optimal/%s/%.0fW", app, capW),
				Run: func(ctx context.Context) (cellOut, error) {
					_, apps, err := h.instances(app, singleAppThreads)
					if err != nil {
						return cellOut{}, err
					}
					optCfg, optEval, ok := control.OptimalSearch(h.plat, apps, capW, control.TotalRate)
					if !ok {
						return cellOut{}, fmt.Errorf("no feasible config for %s at %.0f W", app, capW)
					}
					return cellOut{optCfg: optCfg, optRate: optEval.TotalRate(), optPow: optEval.PowerTotal}, nil
				},
			})
			for _, tech := range Techniques() {
				tech := tech
				cells = append(cells, sweep.Cell[cellOut]{
					Label: fmt.Sprintf("%s/%s/%.0fW", tech, app, capW),
					Run: func(ctx context.Context) (cellOut, error) {
						specs, _, err := h.instances(app, singleAppThreads)
						if err != nil {
							return cellOut{}, err
						}
						rec, err := h.run(ctx, tech, specs, capW, nil,
							seedFor(tech, app, fmt.Sprintf("%.0f", capW)))
						return cellOut{rec: rec}, err
					},
				})
			}
		}
	}

	results, err := sweep.Run(ctx, cells, opts.sweep())
	if err != nil {
		return nil, fmt.Errorf("experiment: single-app sweep: %w", err)
	}

	i := 0
	for _, app := range d.Apps {
		d.Uncapped[app] = results[i].eval
		i++
		for _, capW := range d.Caps {
			putF(d.OptimalRate, capW, app, results[i].optRate)
			putF(d.OptimalPower, capW, app, results[i].optPow)
			putC(d.OptimalConfig, capW, app, results[i].optCfg)
			i++
			for _, tech := range Techniques() {
				putR(d.Records, tech, capW, app, results[i].rec)
				i++
			}
		}
	}
	return d, nil
}

func putF(m map[float64]map[string]float64, capW float64, app string, v float64) {
	if m[capW] == nil {
		m[capW] = map[string]float64{}
	}
	m[capW][app] = v
}

func putR(m map[string]map[float64]map[string]Record, tech string, capW float64, app string, r Record) {
	if m[tech] == nil {
		m[tech] = map[float64]map[string]Record{}
	}
	if m[tech][capW] == nil {
		m[tech][capW] = map[string]Record{}
	}
	m[tech][capW][app] = r
}

func putC(m map[float64]map[string]machine.Config, capW float64, app string, c machine.Config) {
	if m[capW] == nil {
		m[capW] = map[string]machine.Config{}
	}
	m[capW][app] = c
}

// clone deep-copies a Record (slices in SteadyRates, the Eval, and the
// final Config are all owned by the copy).
func (r Record) clone() Record {
	out := r
	out.SteadyRates = append([]float64(nil), r.SteadyRates...)
	out.Eval = cloneEval(r.Eval)
	out.FinalConfig = r.FinalConfig.Clone()
	return out
}

func cloneEval(ev system.Eval) system.Eval {
	out := ev
	out.Rates = append([]float64(nil), ev.Rates...)
	out.PowerSocket = append([]float64(nil), ev.PowerSocket...)
	out.PerAppSpin = append([]float64(nil), ev.PerAppSpin...)
	out.PerAppBW = append([]float64(nil), ev.PerAppBW...)
	return out
}

// Normalized returns a technique's steady performance normalized to
// Optimal for one cap and app (the y-axis of Fig. 3).
func (d *SingleAppData) Normalized(tech string, capW float64, app string) float64 {
	opt := d.OptimalRate[capW][app]
	if opt <= 0 {
		return 0
	}
	return d.Records[tech][capW][app].SteadyTotal() / opt
}

// NormalizedEfficiency returns performance-per-Watt normalized to
// Optimal's (the y-axis of Fig. 7).
func (d *SingleAppData) NormalizedEfficiency(tech string, capW float64, app string) float64 {
	rec := d.Records[tech][capW][app]
	opt := d.OptimalRate[capW][app]
	optP := d.OptimalPower[capW][app]
	if opt <= 0 || optP <= 0 || rec.SteadyPower <= 0 {
		return 0
	}
	return (rec.SteadyTotal() / rec.SteadyPower) / (opt / optP)
}

// feasible reports whether a technique has valid data at a cap, matching
// the paper's missing entries: Soft-DVFS cannot reach 60 W (even the lowest
// p-state violates), and Soft-Modeling's 60 W predictions violate the cap
// on ~70% of data points.
func (d *SingleAppData) feasible(tech string, capW float64) bool {
	if capW > 60 {
		return true
	}
	// Iterate apps in grid order, not map order: float accumulation must
	// be deterministic for rendered tables to be byte-identical.
	switch tech {
	case TechSoftDVFS:
		// Infeasible when the runs could not settle under the cap.
		settledAll := true
		for _, app := range d.Apps {
			if !d.Records[tech][capW][app].Settled {
				settledAll = false
			}
		}
		return settledAll
	case TechSoftModeling:
		// Excluded when violations dominate.
		viol, n := 0.0, 0
		for _, app := range d.Apps {
			viol += d.Records[tech][capW][app].ViolationFrac
			n++
		}
		return n == 0 || viol/float64(n) < 0.2
	}
	return true
}

// Table3 renders the harmonic-mean normalized performance per cap and
// technique.
func Table3(cfg Config) (*report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	return table3From(d), nil
}

// table3From renders Table 3 from sweep data (split out so determinism
// tests can render two independently-run sweeps without the memo).
func table3From(d *SingleAppData) *report.Table {
	t := report.NewTable("Table 3: Comparison of Harmonic Mean Performance (normalized to optimal)",
		append([]string{"Power Cap"}, Techniques()...)...)
	for _, capW := range d.Caps {
		row := []string{fmt.Sprintf("%.0fW", capW)}
		for _, tech := range Techniques() {
			if !d.feasible(tech, capW) {
				row = append(row, "-")
				continue
			}
			var vals []float64
			for _, app := range d.Apps {
				vals = append(vals, d.Normalized(tech, capW, app))
			}
			row = append(row, report.F(metrics.HarmonicMean(vals), 2))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig3 renders per-application normalized performance, one table per cap.
func Fig3(cfg Config) ([]*report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	var out []*report.Table
	for _, capW := range d.Caps {
		t := report.NewTable(
			fmt.Sprintf("Fig 3 (%0.fW): performance normalized to optimal", capW),
			append([]string{"Benchmark"}, Techniques()...)...)
		for _, app := range append(append([]string{}, d.Apps...), "Harm.Mean") {
			row := []string{app}
			for _, tech := range Techniques() {
				if !d.feasible(tech, capW) {
					row = append(row, "-")
					continue
				}
				if app == "Harm.Mean" {
					var vals []float64
					for _, a := range d.Apps {
						vals = append(vals, d.Normalized(tech, capW, a))
					}
					row = append(row, report.F(metrics.HarmonicMean(vals), 2))
				} else {
					row = append(row, report.F(d.Normalized(tech, capW, app), 2))
				}
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig4Techs lists the techniques with online settling behaviour
// (Soft-Modeling is offline and has no settling time).
func Fig4Techs() []string {
	return []string{TechRAPL, TechSoftDVFS, TechSoftDecision, TechPUPiL}
}

// Fig4 renders settling times (ms) per application at the 140 W cap, plus
// the cross-application average.
func Fig4(cfg Config) (*report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	const capW = 140.0
	t := report.NewTable("Fig 4: Settling time (ms) at the 140W cap",
		append([]string{"Benchmark"}, Fig4Techs()...)...)
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, app := range d.Apps {
		row := []string{app}
		for _, tech := range Fig4Techs() {
			rec := d.Records[tech][capW][app]
			if !rec.Settled {
				row = append(row, "unsettled")
				continue
			}
			ms := float64(rec.Settling) / float64(time.Millisecond)
			row = append(row, report.F(ms, 0))
			sums[tech] += ms
			counts[tech]++
		}
		t.AddRow(row...)
	}
	avg := []string{"Average"}
	for _, tech := range Fig4Techs() {
		if counts[tech] == 0 {
			avg = append(avg, "-")
			continue
		}
		avg = append(avg, report.F(sums[tech]/float64(counts[tech]), 0))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig4Averages returns mean settling in milliseconds per technique, for
// assertions and summaries.
func Fig4Averages(cfg Config) (map[string]float64, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	const capW = 140.0
	out := map[string]float64{}
	for _, tech := range Fig4Techs() {
		sum, n := 0.0, 0
		for _, app := range d.Apps {
			rec := d.Records[tech][capW][app]
			if rec.Settled {
				sum += float64(rec.Settling) / float64(time.Millisecond)
				n++
			}
		}
		if n > 0 {
			out[tech] = sum / float64(n)
		}
	}
	return out, nil
}

// Fig5Row is one benchmark's characterization point.
type Fig5Row struct {
	App      string
	GIPS     float64
	MemBWGBs float64
	// RAPLNearOptimal is true for "blue dot" apps: RAPL within 10% of
	// optimal at the 140 W cap.
	RAPLNearOptimal bool
}

// Fig5 returns the benchmark-characterization scatter data.
func Fig5(cfg Config) ([]Fig5Row, *report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Fig 5: Benchmark characteristics (uncapped, max configuration)",
		"Benchmark", "GIPS", "MemBW GB/s", "RAPL@140W")
	var rows []Fig5Row
	for _, app := range d.Apps {
		ev := d.Uncapped[app]
		near := d.Normalized(TechRAPL, 140, app) >= 0.9
		rows = append(rows, Fig5Row{App: app, GIPS: ev.GIPS, MemBWGBs: ev.MemBWGBs, RAPLNearOptimal: near})
		cls := "poor (>10% from optimal)"
		if near {
			cls = "near-optimal"
		}
		t.AddRow(app, report.F(ev.GIPS, 1), report.F(ev.MemBWGBs, 1), cls)
	}
	return rows, t, nil
}

// Fig7 renders energy efficiency normalized to optimal, one table per cap
// (Soft-Modeling is omitted, as in the paper's figure).
func Fig7(cfg Config) ([]*report.Table, error) {
	d, err := SingleAppSweep(cfg)
	if err != nil {
		return nil, err
	}
	techs := []string{TechRAPL, TechSoftDVFS, TechSoftDecision, TechPUPiL}
	var out []*report.Table
	for _, capW := range d.Caps {
		t := report.NewTable(
			fmt.Sprintf("Fig 7 (%0.fW): energy efficiency normalized to optimal", capW),
			append([]string{"Benchmark"}, techs...)...)
		for _, app := range append(append([]string{}, d.Apps...), "Harm.Mean") {
			row := []string{app}
			for _, tech := range techs {
				if !d.feasible(tech, capW) {
					row = append(row, "-")
					continue
				}
				if app == "Harm.Mean" {
					var vals []float64
					for _, a := range d.Apps {
						vals = append(vals, d.NormalizedEfficiency(tech, capW, a))
					}
					row = append(row, report.F(metrics.HarmonicMean(vals), 2))
				} else {
					row = append(row, report.F(d.NormalizedEfficiency(tech, capW, app), 2))
				}
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}
